//! Synthetic benchmark lakes with ground truth.
//!
//! A lake is built from `universes` base relations. Universe `u` has a key
//! column (entity labels `u{u}_e{i}`), `categorical` token columns and
//! `numeric` columns over a universe-specific range. Each universe is
//! sliced into `fragments` tables: a random column subset (always keeping
//! the key) over a random row window, with nulls injected at `null_rate`
//! and headers optionally scrambled.
//!
//! Ground truth (see [`GroundTruth`]):
//! * two fragments of the same universe with the *same column subset* and
//!   different row windows are **unionable**;
//! * two fragments of the same universe with *different column subsets*
//!   are **joinable** (they share the key column);
//! * every fragment column carries its global **integration class**
//!   `(universe, original column)` for alignment scoring;
//! * a synthetic **KB** types every categorical domain, giving the
//!   semantic matcher/discovery the coverage that YAGO provides at scale.

use std::collections::{HashMap, HashSet};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use dialite_kb::{KbBuilder, KnowledgeBase};
use dialite_table::{DataLake, Table, Value};

/// Parameters of the synthetic lake.
#[derive(Debug, Clone)]
pub struct LakeSpec {
    /// Number of base universes.
    pub universes: usize,
    /// Fragments sliced from each universe.
    pub fragments_per_universe: usize,
    /// Rows in each universe relation.
    pub rows_per_universe: usize,
    /// Categorical columns per universe (beyond the key).
    pub categorical_cols: usize,
    /// Numeric columns per universe.
    pub numeric_cols: usize,
    /// Fraction of fragment cells nulled out (missing nulls).
    pub null_rate: f64,
    /// Fraction of categorical fragment cells replaced by a *dirty variant*
    /// of the value (a character swap) — weakens exact value overlap while
    /// keeping lexical similarity, stressing instance-based matching.
    pub value_dirt_rate: f64,
    /// Replace fragment headers with opaque names (`c17`), the data-lake
    /// reality the paper stresses.
    pub scramble_headers: bool,
    /// RNG seed — same spec + seed → identical lake.
    pub seed: u64,
}

impl Default for LakeSpec {
    fn default() -> Self {
        LakeSpec {
            universes: 4,
            fragments_per_universe: 4,
            rows_per_universe: 60,
            categorical_cols: 3,
            numeric_cols: 1,
            null_rate: 0.05,
            value_dirt_rate: 0.0,
            scramble_headers: false,
            seed: 0xD1A117E,
        }
    }
}

/// Swap two adjacent characters — the dirty-variant transformation.
fn dirty(rng: &mut StdRng, s: &str) -> String {
    let mut chars: Vec<char> = s.chars().collect();
    if chars.len() >= 2 {
        let i = rng.gen_range(0..chars.len() - 1);
        chars.swap(i, i + 1);
    }
    chars.into_iter().collect()
}

/// What is true about the generated lake.
#[derive(Debug)]
pub struct GroundTruth {
    /// Universe index of every fragment.
    pub universe_of: HashMap<String, usize>,
    /// For each fragment: tables it is unionable with.
    pub unionable: HashMap<String, HashSet<String>>,
    /// For each fragment: tables it is joinable with.
    pub joinable: HashMap<String, HashSet<String>>,
    /// Integration class of every fragment column:
    /// `(table, column index) → (universe, original column index)`.
    pub column_class: HashMap<(String, usize), (usize, usize)>,
    /// A synthetic KB typing every categorical domain of every universe.
    pub kb: KnowledgeBase,
}

impl GroundTruth {
    /// All tables related (unionable or joinable) to `table`.
    pub fn related(&self, table: &str) -> HashSet<String> {
        let mut out = self.unionable.get(table).cloned().unwrap_or_default();
        if let Some(j) = self.joinable.get(table) {
            out.extend(j.iter().cloned());
        }
        out
    }
}

/// The generated lake plus its ground truth.
#[derive(Debug)]
pub struct SyntheticLake {
    /// The data lake of fragments.
    pub lake: DataLake,
    /// Ground-truth relations for evaluation.
    pub truth: GroundTruth,
}

/// One universe's full relation held during generation.
struct Universe {
    /// Column headers of the universe (`key`, categorical…, numeric…).
    headers: Vec<String>,
    rows: Vec<Vec<Value>>,
}

impl SyntheticLake {
    /// Generate a lake per the spec.
    pub fn generate(spec: &LakeSpec) -> SyntheticLake {
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let mut kb = KbBuilder::new();
        kb.add_type("entity", None);

        // Build universes.
        let mut universes = Vec::with_capacity(spec.universes);
        for u in 0..spec.universes {
            let mut headers = vec![format!("u{u}_key")];
            for c in 0..spec.categorical_cols {
                headers.push(format!("u{u}_cat{c}"));
            }
            for c in 0..spec.numeric_cols {
                headers.push(format!("u{u}_num{c}"));
            }
            // KB types per domain.
            let key_type = format!("u{u}_entity");
            kb.add_type(&key_type, Some("entity"));
            let cat_types: Vec<String> = (0..spec.categorical_cols)
                .map(|c| {
                    let t = format!("u{u}_domain{c}");
                    kb.add_type(&t, Some("entity"));
                    t
                })
                .collect();

            let mut rows = Vec::with_capacity(spec.rows_per_universe);
            // Categorical vocabularies: ~√rows distinct values per column.
            let vocab = (spec.rows_per_universe as f64).sqrt().ceil() as usize + 2;
            for r in 0..spec.rows_per_universe {
                let key = format!("u{u}_e{r}");
                kb.add_entity(&key, &[key_type.as_str()]);
                let mut row: Vec<Value> = vec![Value::Text(key.clone())];
                for (c, cat_type) in cat_types.iter().enumerate() {
                    let v = format!("u{u}c{c}_v{}", rng.gen_range(0..vocab));
                    kb.add_entity(&v, &[cat_type.as_str()]);
                    kb.add_fact(&key, &format!("u{u}_has{c}"), &v);
                    row.push(Value::Text(v));
                }
                let base = (u as f64 + 1.0) * 1000.0;
                for _ in 0..spec.numeric_cols {
                    row.push(Value::Float(base + rng.gen_range(0.0..100.0)));
                }
                rows.push(row);
            }
            universes.push(Universe { headers, rows });
        }

        // Slice fragments.
        let mut lake = DataLake::new();
        let mut universe_of = HashMap::new();
        let mut column_class: HashMap<(String, usize), (usize, usize)> = HashMap::new();
        // (universe, sorted column subset) per fragment, for truth relations.
        let mut frag_cols: HashMap<String, (usize, Vec<usize>)> = HashMap::new();

        for (u, universe) in universes.iter().enumerate() {
            let total_cols = universe.headers.len();
            for f in 0..spec.fragments_per_universe {
                let name = format!("u{u}_frag{f}");
                // Column subset: key + random non-empty subset of the rest.
                let mut others: Vec<usize> = (1..total_cols).collect();
                others.shuffle(&mut rng);
                let keep = rng.gen_range(1..=others.len());
                let mut cols: Vec<usize> = std::iter::once(0)
                    .chain(others.into_iter().take(keep))
                    .collect();
                cols.sort_unstable();
                // Row window: contiguous slice covering 40–80% of rows.
                let len = spec.rows_per_universe;
                let window = (len as f64 * rng.gen_range(0.4..0.8)) as usize;
                let start = rng.gen_range(0..=(len - window.min(len)));
                let window = window.max(1);

                let headers: Vec<String> = cols
                    .iter()
                    .enumerate()
                    .map(|(i, &c)| {
                        if spec.scramble_headers {
                            format!("c{}", rng.gen_range(0..10_000usize) * 10 + i)
                        } else {
                            universe.headers[c].clone()
                        }
                    })
                    .collect();
                let mut rows = Vec::with_capacity(window);
                for r in start..(start + window).min(len) {
                    let row: Vec<Value> = cols
                        .iter()
                        .map(|&c| {
                            if rng.gen_bool(spec.null_rate) {
                                return Value::null_missing();
                            }
                            let v = universe.rows[r][c].clone();
                            match v {
                                Value::Text(s) if rng.gen_bool(spec.value_dirt_rate) => {
                                    Value::Text(dirty(&mut rng, &s))
                                }
                                v => v,
                            }
                        })
                        .collect();
                    rows.push(row);
                }
                let table = Table::from_rows(&name, &headers, rows)
                    .expect("generated fragments are well-formed");
                for (i, &c) in cols.iter().enumerate() {
                    column_class.insert((name.clone(), i), (u, c));
                }
                universe_of.insert(name.clone(), u);
                frag_cols.insert(name.clone(), (u, cols));
                lake.add(table).expect("fragment names are unique");
            }
        }

        // Truth relations.
        let mut unionable: HashMap<String, HashSet<String>> = HashMap::new();
        let mut joinable: HashMap<String, HashSet<String>> = HashMap::new();
        let names: Vec<&String> = frag_cols.keys().collect();
        for (i, a) in names.iter().enumerate() {
            for b in names.iter().skip(i + 1) {
                let (ua, ca) = &frag_cols[*a];
                let (ub, cb) = &frag_cols[*b];
                if ua != ub {
                    continue;
                }
                if ca == cb {
                    unionable
                        .entry((**a).clone())
                        .or_default()
                        .insert((**b).clone());
                    unionable
                        .entry((**b).clone())
                        .or_default()
                        .insert((**a).clone());
                } else {
                    joinable
                        .entry((**a).clone())
                        .or_default()
                        .insert((**b).clone());
                    joinable
                        .entry((**b).clone())
                        .or_default()
                        .insert((**a).clone());
                }
            }
        }

        SyntheticLake {
            lake,
            truth: GroundTruth {
                universe_of,
                unionable,
                joinable,
                column_class,
                kb: kb.build(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> LakeSpec {
        LakeSpec {
            universes: 3,
            fragments_per_universe: 3,
            rows_per_universe: 30,
            categorical_cols: 2,
            numeric_cols: 1,
            null_rate: 0.1,
            value_dirt_rate: 0.0,
            scramble_headers: false,
            seed: 99,
        }
    }

    #[test]
    fn generates_expected_table_count() {
        let s = SyntheticLake::generate(&small_spec());
        assert_eq!(s.lake.len(), 9);
        assert_eq!(s.truth.universe_of.len(), 9);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SyntheticLake::generate(&small_spec());
        let b = SyntheticLake::generate(&small_spec());
        for name in a.lake.names() {
            let ta = a.lake.get(name).unwrap();
            let tb = b.lake.get(name).unwrap();
            assert_eq!(ta.as_ref(), tb.as_ref(), "table {name} differs");
        }
    }

    #[test]
    fn truth_relations_stay_within_universe() {
        let s = SyntheticLake::generate(&small_spec());
        for (frag, related) in s.truth.unionable.iter().chain(s.truth.joinable.iter()) {
            let u = s.truth.universe_of[frag];
            for r in related {
                assert_eq!(s.truth.universe_of[r], u);
            }
        }
    }

    #[test]
    fn fragments_share_key_values_with_siblings() {
        // Joinable fragments must actually overlap on the key domain.
        let s = SyntheticLake::generate(&small_spec());
        for (frag, related) in &s.truth.joinable {
            let t = s.lake.get(frag).unwrap();
            let key_col = (0..t.column_count())
                .find(|&c| s.truth.column_class[&(frag.clone(), c)].1 == 0)
                .unwrap();
            let keys = t.column_token_set(key_col);
            for r in related {
                let rt = s.lake.get(r).unwrap();
                let rkey = (0..rt.column_count())
                    .find(|&c| s.truth.column_class[&(r.clone(), c)].1 == 0)
                    .unwrap();
                let rkeys = rt.column_token_set(rkey);
                // Row windows cover ≥40% each, so they overlap with very
                // high probability in a 30-row universe.
                let shared = keys.intersection(&rkeys).count();
                assert!(shared > 0, "{frag} and {r} share no keys");
            }
        }
    }

    #[test]
    fn null_rate_is_respected_roughly() {
        let spec = LakeSpec {
            null_rate: 0.3,
            value_dirt_rate: 0.0,
            ..small_spec()
        };
        let s = SyntheticLake::generate(&spec);
        let mut cells = 0usize;
        let mut nulls = 0usize;
        for t in s.lake.tables() {
            cells += t.row_count() * t.column_count();
            nulls += t.null_count();
        }
        let rate = nulls as f64 / cells as f64;
        assert!((rate - 0.3).abs() < 0.08, "observed null rate {rate}");
    }

    #[test]
    fn value_dirt_weakens_overlap_but_preserves_shape() {
        let clean = SyntheticLake::generate(&small_spec());
        let dirty = SyntheticLake::generate(&LakeSpec {
            value_dirt_rate: 0.5,
            ..small_spec()
        });
        // Same table names / shapes.
        assert_eq!(clean.lake.len(), dirty.lake.len());
        // Dirty fragments share fewer exact tokens with their siblings.
        let overlap = |s: &SyntheticLake| -> usize {
            let mut total = 0;
            let names: Vec<String> = s.lake.names().map(str::to_string).collect();
            for a in &names {
                for b in &names {
                    if a < b && s.truth.universe_of[a] == s.truth.universe_of[b] {
                        let ta = s.lake.get(a).unwrap();
                        let tb = s.lake.get(b).unwrap();
                        total += ta
                            .column_token_set(0)
                            .intersection(&tb.column_token_set(0))
                            .count();
                    }
                }
            }
            total
        };
        assert!(
            overlap(&dirty) < overlap(&clean),
            "dirt should reduce exact key overlap"
        );
    }

    #[test]
    fn synthetic_kb_types_categorical_domains() {
        let s = SyntheticLake::generate(&small_spec());
        let kb = &s.truth.kb;
        // Every key entity of universe 0 should be typed u0_entity.
        let t = kb.type_id("u0_entity").unwrap();
        assert!(kb.types_of("u0_e5").contains(&t));
        // Categorical values are typed by domain.
        let d = kb.type_id("u0_domain0").unwrap();
        assert!(kb.types_of("u0c0_v1").contains(&d));
    }

    #[test]
    fn scrambled_headers_have_no_universe_hint() {
        let spec = LakeSpec {
            scramble_headers: true,
            ..small_spec()
        };
        let s = SyntheticLake::generate(&spec);
        for t in s.lake.tables() {
            for name in t.schema().names() {
                assert!(!name.contains("u0_"), "header {name} leaks identity");
            }
        }
    }

    #[test]
    fn column_classes_cover_every_column() {
        let s = SyntheticLake::generate(&small_spec());
        for t in s.lake.tables() {
            for c in 0..t.column_count() {
                assert!(s
                    .truth
                    .column_class
                    .contains_key(&(t.name().to_string(), c)));
            }
        }
    }
}
