//! Evaluation metrics for discovery and alignment experiments.

use std::collections::HashSet;

use dialite_align::Alignment;
use dialite_table::Table;

use crate::lake::GroundTruth;

/// Precision@k and recall@k of a ranked result list against a truth set.
/// Precision@k counts hits among the first `k` results; recall@k counts
/// which truths were retrieved. Both are 1.0 for an empty truth set with no
/// results.
pub fn precision_recall_at_k(ranked: &[String], truth: &HashSet<String>, k: usize) -> (f64, f64) {
    let top: Vec<&String> = ranked.iter().take(k).collect();
    let hits = top.iter().filter(|t| truth.contains(t.as_str())).count();
    let precision = if top.is_empty() {
        if truth.is_empty() {
            1.0
        } else {
            0.0
        }
    } else {
        hits as f64 / top.len() as f64
    };
    let recall = if truth.is_empty() {
        1.0
    } else {
        hits as f64 / truth.len().min(k) as f64
    };
    (precision, recall)
}

/// Pair-level precision/recall/F1 of an alignment against the lake's
/// ground-truth column classes: a *pair* is two columns (from different
/// tables) sharing an integration ID; it is correct when the columns carry
/// the same `(universe, original column)` class.
pub fn alignment_pair_f1(
    tables: &[&Table],
    alignment: &Alignment,
    truth: &GroundTruth,
) -> (f64, f64, f64) {
    // Collect all cross-table column pairs with truth and predicted labels.
    let mut predicted: HashSet<((usize, usize), (usize, usize))> = HashSet::new();
    let mut actual: HashSet<((usize, usize), (usize, usize))> = HashSet::new();
    for (ta, a) in tables.iter().enumerate() {
        for (tb, b) in tables.iter().enumerate().skip(ta + 1) {
            for ca in 0..a.column_count() {
                for cb in 0..b.column_count() {
                    let key = ((ta, ca), (tb, cb));
                    if alignment.id_of(ta, ca) == alignment.id_of(tb, cb) {
                        predicted.insert(key);
                    }
                    let class_a = truth.column_class.get(&(a.name().to_string(), ca));
                    let class_b = truth.column_class.get(&(b.name().to_string(), cb));
                    if let (Some(x), Some(y)) = (class_a, class_b) {
                        if x == y {
                            actual.insert(key);
                        }
                    }
                }
            }
        }
    }
    let tp = predicted.intersection(&actual).count() as f64;
    let precision = if predicted.is_empty() {
        1.0
    } else {
        tp / predicted.len() as f64
    };
    let recall = if actual.is_empty() {
        1.0
    } else {
        tp / actual.len() as f64
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    (precision, recall, f1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lake::{LakeSpec, SyntheticLake};
    use dialite_align::Alignment;

    #[test]
    fn precision_recall_basics() {
        let truth: HashSet<String> = ["a", "b"].iter().map(|s| s.to_string()).collect();
        let ranked = vec!["a".to_string(), "x".to_string(), "b".to_string()];
        let (p, r) = precision_recall_at_k(&ranked, &truth, 2);
        assert!((p - 0.5).abs() < 1e-12);
        assert!((r - 0.5).abs() < 1e-12);
        let (p3, r3) = precision_recall_at_k(&ranked, &truth, 3);
        assert!((p3 - 2.0 / 3.0).abs() < 1e-12);
        assert!((r3 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn precision_recall_edge_cases() {
        let empty: HashSet<String> = HashSet::new();
        assert_eq!(precision_recall_at_k(&[], &empty, 5), (1.0, 1.0));
        let truth: HashSet<String> = ["a".to_string()].into_iter().collect();
        assert_eq!(precision_recall_at_k(&[], &truth, 5), (0.0, 0.0));
    }

    #[test]
    fn perfect_alignment_scores_one_on_unscrambled_lake() {
        // Fragments keep original universe headers → header-equality
        // alignment is exactly the truth.
        let s = SyntheticLake::generate(&LakeSpec {
            universes: 2,
            fragments_per_universe: 2,
            rows_per_universe: 20,
            categorical_cols: 2,
            numeric_cols: 1,
            null_rate: 0.0,
            value_dirt_rate: 0.0,
            scramble_headers: false,
            seed: 5,
        });
        let tables: Vec<_> = s.lake.tables().map(|t| t.as_ref().clone()).collect();
        let refs: Vec<&dialite_table::Table> = tables.iter().collect();
        let al = Alignment::by_headers(&refs);
        let (p, r, f1) = alignment_pair_f1(&refs, &al, &s.truth);
        assert_eq!((p, r, f1), (1.0, 1.0, 1.0));
    }

    #[test]
    fn header_alignment_fails_on_scrambled_lake() {
        let s = SyntheticLake::generate(&LakeSpec {
            universes: 2,
            fragments_per_universe: 2,
            rows_per_universe: 20,
            categorical_cols: 2,
            numeric_cols: 1,
            null_rate: 0.0,
            value_dirt_rate: 0.0,
            scramble_headers: true,
            seed: 5,
        });
        let tables: Vec<_> = s.lake.tables().map(|t| t.as_ref().clone()).collect();
        let refs: Vec<&dialite_table::Table> = tables.iter().collect();
        let al = Alignment::by_headers(&refs);
        let (_, r, _) = alignment_pair_f1(&refs, &al, &s.truth);
        assert!(r < 0.2, "scrambled headers should defeat the baseline: {r}");
    }
}
