//! The GPT-style query-table synthesizer (paper Fig. 5).
//!
//! The demo lets a user without a query table type a prompt like
//! *"generate a query table about COVID-19 cases with 5 columns and 5
//! rows"* and get a plausible table back from GPT-3. This substitute keeps
//! the same entry point — prompt in, typed table out — backed by seeded
//! topic templates instead of a closed API.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use dialite_table::{Table, Value};

const CITIES: &[(&str, &str)] = &[
    ("Berlin", "Germany"),
    ("Manchester", "England"),
    ("Barcelona", "Spain"),
    ("Toronto", "Canada"),
    ("Mexico City", "Mexico"),
    ("Boston", "United States"),
    ("New Delhi", "India"),
    ("Madrid", "Spain"),
    ("Hamburg", "Germany"),
    ("Ottawa", "Canada"),
    ("Chicago", "United States"),
    ("Mumbai", "India"),
    ("London", "England"),
    ("Guadalajara", "Mexico"),
];

const VACCINES: &[(&str, &str, &str)] = &[
    ("Pfizer", "United States", "FDA"),
    ("Moderna", "United States", "FDA"),
    ("Johnson & Johnson", "United States", "FDA"),
    ("AstraZeneca", "England", "EMA"),
    ("Sputnik V", "Russia", "COFEPRIS"),
];

/// Known topics of the synthesizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Topic {
    Covid,
    Vaccines,
    Cities,
    Generic,
}

fn topic_of(prompt: &str) -> Topic {
    let p = prompt.to_lowercase();
    if p.contains("vaccine") || p.contains("approver") {
        Topic::Vaccines
    } else if p.contains("covid") || p.contains("case") || p.contains("death") {
        Topic::Covid
    } else if p.contains("city") || p.contains("cities") || p.contains("population") {
        Topic::Cities
    } else {
        Topic::Generic
    }
}

/// The seeded query-table generator.
#[derive(Debug, Clone)]
pub struct TableSynth {
    rng: StdRng,
}

impl TableSynth {
    /// Generator with a fixed seed (same seed + prompt → same table).
    pub fn new(seed: u64) -> TableSynth {
        TableSynth {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Generate a table from a natural-language prompt, bounded by the
    /// requested number of rows and columns (topic templates may have
    /// fewer columns than requested; never more).
    pub fn generate(&mut self, prompt: &str, rows: usize, cols: usize) -> Table {
        let rows = rows.max(1);
        let cols = cols.max(1);
        match topic_of(prompt) {
            Topic::Covid => self.covid(rows, cols),
            Topic::Vaccines => self.vaccines(rows, cols),
            Topic::Cities => self.cities(rows, cols),
            Topic::Generic => self.generic(rows, cols),
        }
    }

    fn covid(&mut self, rows: usize, cols: usize) -> Table {
        let all = [
            "Country",
            "City",
            "Vaccination Rate",
            "Total Cases",
            "Death Rate",
        ];
        let ncols = cols.min(all.len()).max(2);
        let mut pool: Vec<&(&str, &str)> = CITIES.iter().collect();
        pool.shuffle(&mut self.rng);
        let mut data = Vec::with_capacity(rows);
        for i in 0..rows {
            let (city, country) = pool[i % pool.len()];
            let mut row: Vec<Value> = vec![
                (*country).into(),
                (*city).into(),
                Value::Float((self.rng.gen_range(40..95) as f64) / 100.0),
                Value::Int(self.rng.gen_range(50_000..3_000_000)),
                Value::Int(self.rng.gen_range(50..400)),
            ];
            row.truncate(ncols);
            data.push(row);
        }
        Table::from_rows("generated_covid", &all[..ncols], data).expect("fixed arity")
    }

    fn vaccines(&mut self, rows: usize, cols: usize) -> Table {
        let all = ["Vaccine", "Country", "Approver"];
        let ncols = cols.min(all.len()).max(2);
        let mut data = Vec::with_capacity(rows);
        for i in 0..rows {
            let (vaccine, country, approver) = VACCINES[i % VACCINES.len()];
            let mut row: Vec<Value> = vec![vaccine.into(), country.into(), approver.into()];
            row.truncate(ncols);
            data.push(row);
        }
        Table::from_rows("generated_vaccines", &all[..ncols], data).expect("fixed arity")
    }

    fn cities(&mut self, rows: usize, cols: usize) -> Table {
        let all = ["City", "Country", "Population"];
        let ncols = cols.min(all.len()).max(2);
        let mut pool: Vec<&(&str, &str)> = CITIES.iter().collect();
        pool.shuffle(&mut self.rng);
        let mut data = Vec::with_capacity(rows);
        for i in 0..rows {
            let (city, country) = pool[i % pool.len()];
            let mut row: Vec<Value> = vec![
                (*city).into(),
                (*country).into(),
                Value::Int(self.rng.gen_range(100_000..10_000_000)),
            ];
            row.truncate(ncols);
            data.push(row);
        }
        Table::from_rows("generated_cities", &all[..ncols], data).expect("fixed arity")
    }

    fn generic(&mut self, rows: usize, cols: usize) -> Table {
        let names: Vec<String> = (0..cols).map(|c| format!("attr_{c}")).collect();
        let mut data = Vec::with_capacity(rows);
        for r in 0..rows {
            let row: Vec<Value> = (0..cols)
                .map(|c| {
                    if c == 0 {
                        Value::Text(format!("item_{r}"))
                    } else {
                        Value::Int(self.rng.gen_range(0..1000))
                    }
                })
                .collect();
            data.push(row);
        }
        Table::from_rows("generated", &names, data).expect("fixed arity")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dialite_table::ColumnType;

    #[test]
    fn fig5_prompt_shape() {
        // "generate a query table about COVID-19 cases that has 5 columns
        // and 5 rows" — the paper's Fig. 5 scenario.
        let mut synth = TableSynth::new(42);
        let t = synth.generate("query table about COVID-19 cases", 5, 5);
        assert_eq!(t.row_count(), 5);
        assert_eq!(t.column_count(), 5);
        assert_eq!(t.column_index("City"), Some(1));
        assert_eq!(t.schema().column(2).ctype, ColumnType::Float);
    }

    #[test]
    fn same_seed_same_table() {
        let a = TableSynth::new(7).generate("covid cases", 4, 3);
        let b = TableSynth::new(7).generate("covid cases", 4, 3);
        assert_eq!(a, b);
        let c = TableSynth::new(8).generate("covid cases", 4, 3);
        assert!(
            !a.same_content(&c) || a == c,
            "different seeds usually differ"
        );
    }

    #[test]
    fn topic_routing() {
        let mut s = TableSynth::new(1);
        assert_eq!(
            s.generate("vaccine approvals", 3, 3).name(),
            "generated_vaccines"
        );
        assert_eq!(
            s.generate("city populations", 3, 3).name(),
            "generated_cities"
        );
        assert_eq!(s.generate("random stuff", 3, 3).name(), "generated");
    }

    #[test]
    fn generic_respects_dimensions() {
        let t = TableSynth::new(1).generate("whatever", 7, 4);
        assert_eq!(t.row_count(), 7);
        assert_eq!(t.column_count(), 4);
    }

    #[test]
    fn degenerate_dimensions_clamped() {
        let t = TableSynth::new(1).generate("covid", 0, 0);
        assert!(t.row_count() >= 1);
        assert!(t.column_count() >= 2);
    }
}
