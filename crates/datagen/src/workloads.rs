//! Parameterized workloads for the benchmark harness.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use dialite_kb::{KbBuilder, KnowledgeBase};
use dialite_table::{DataLake, Table, Value};

/// Parameters of the FD scaling workload (experiment E6).
#[derive(Debug, Clone)]
pub struct FdWorkload {
    /// Number of tables in the integration set.
    pub tables: usize,
    /// Rows per table.
    pub rows: usize,
    /// Size of the shared key domain; smaller = more joins. Each table
    /// draws keys uniformly from `0..key_domain`.
    pub key_domain: usize,
    /// Fraction of non-key cells nulled out.
    pub null_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FdWorkload {
    fn default() -> Self {
        FdWorkload {
            tables: 4,
            rows: 100,
            key_domain: 200,
            null_rate: 0.1,
            seed: 7,
        }
    }
}

impl FdWorkload {
    /// Generate the integration set: table `i` has schema
    /// `(key, attr_i)` — a star around the shared key, so FD merges chains
    /// through key equality while attribute columns stay disjoint. The
    /// shapes match the open-data lakes ALITE evaluates on: many narrow
    /// tables overlapping on entity columns.
    pub fn generate(&self) -> Vec<Table> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut out = Vec::with_capacity(self.tables);
        for t in 0..self.tables {
            let cols = ["key".to_string(), format!("attr_{t}")];
            let mut rows = Vec::with_capacity(self.rows);
            for r in 0..self.rows {
                let key = Value::Text(format!("k{}", rng.gen_range(0..self.key_domain.max(1))));
                let attr = if rng.gen_bool(self.null_rate) {
                    Value::null_missing()
                } else {
                    Value::Text(format!("t{t}v{r}"))
                };
                rows.push(vec![key, attr]);
            }
            out.push(Table::from_rows(&format!("W{t}"), &cols, rows).expect("fixed arity"));
        }
        out
    }
}

/// Parameters of the ER-quality workload (experiment E10): one table of
/// entity mentions with duplicates under typo/whitespace dirt, plus
/// ground-truth entity labels. Entity names, codes and locations are drawn
/// from random letter pools so that *distinct* entities are lexically far
/// apart (as real organization names are) while a mention's dirt keeps it
/// close to its own entity.
#[derive(Debug, Clone)]
pub struct ErWorkload {
    /// Number of distinct entities.
    pub entities: usize,
    /// Mentions per entity (≥ 1; duplicates beyond the first are dirtied).
    pub mentions_per_entity: usize,
    /// Probability a duplicate drops code/location to null — mimicking the
    /// incomplete tuples outer join produces.
    pub null_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ErWorkload {
    fn default() -> Self {
        ErWorkload {
            entities: 50,
            mentions_per_entity: 3,
            null_rate: 0.2,
            seed: 13,
        }
    }
}

fn rand_word(rng: &mut StdRng, len: usize) -> String {
    (0..len)
        .map(|_| (b'a' + rng.gen_range(0..26u8)) as char)
        .collect()
}

/// Swap two adjacent characters (a typo).
fn typo(rng: &mut StdRng, s: &str) -> String {
    let mut chars: Vec<char> = s.chars().collect();
    if chars.len() >= 2 {
        let i = rng.gen_range(0..chars.len() - 1);
        chars.swap(i, i + 1);
    }
    chars.into_iter().collect()
}

/// One synthetic entity: a distinctive name, code and location.
#[derive(Debug, Clone)]
pub struct ErEntity {
    /// Multi-word organization-like name.
    pub name: String,
    /// Short unique code.
    pub code: String,
    /// Distinctive location string (secondary key).
    pub location: String,
}

/// Generate the entity roster of the workload (shared by E10.1 and E10.2).
pub fn er_entities(count: usize, seed: u64) -> Vec<ErEntity> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|e| ErEntity {
            name: format!(
                "{} {} {}",
                rand_word(&mut rng, 7),
                rand_word(&mut rng, 6),
                rand_word(&mut rng, 5)
            ),
            code: format!("{}{e:03}", rand_word(&mut rng, 4).to_uppercase()),
            location: format!("{} city", rand_word(&mut rng, 7)),
        })
        .collect()
}

impl ErWorkload {
    /// Generate `(mention table, ground-truth entity label per row)`.
    pub fn generate(&self) -> (Table, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let entities = er_entities(self.entities, self.seed.wrapping_add(1));
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for (e, ent) in entities.iter().enumerate() {
            for m in 0..self.mentions_per_entity.max(1) {
                let mention_name = match m % 3 {
                    0 => ent.name.clone(),
                    1 => typo(&mut rng, &ent.name),
                    _ => ent.name.replace(' ', "  "), // whitespace dirt
                };
                let code_v = if m > 0 && rng.gen_bool(self.null_rate) {
                    Value::null_missing()
                } else {
                    Value::Text(ent.code.clone())
                };
                let city_v = if m > 0 && rng.gen_bool(self.null_rate) {
                    Value::null_missing()
                } else {
                    Value::Text(ent.location.clone())
                };
                rows.push(vec![Value::Text(mention_name), code_v, city_v]);
                labels.push(e);
            }
        }
        let table =
            Table::from_rows("mentions", &["name", "code", "city"], rows).expect("fixed arity");
        (table, labels)
    }
}

/// Parameters of the lake-churn workload: an initial lake plus a trace of
/// interleaved add / replace / remove / query operations — the living-lake
/// regime incremental discovery indexes must survive (the CRUD-bench shape
/// applied to table discovery).
#[derive(Debug, Clone)]
pub struct ChurnWorkload {
    /// Tables in the initial lake.
    pub initial_tables: usize,
    /// Distinct key tokens per table (the discovery-relevant column).
    pub rows_per_table: usize,
    /// Size of the shared token universe. Each table draws its keys from a
    /// random contiguous window of the universe, so overlapping windows
    /// produce the full spectrum of containment relations.
    pub vocab: usize,
    /// Number of trace operations after the initial lake.
    pub ops: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ChurnWorkload {
    fn default() -> Self {
        ChurnWorkload {
            initial_tables: 16,
            rows_per_table: 24,
            vocab: 400,
            ops: 32,
            seed: 23,
        }
    }
}

/// One operation of a churn trace.
#[derive(Debug, Clone, PartialEq)]
pub enum ChurnOp {
    /// Register a new table.
    Add(Table),
    /// Replace the same-named live table in place.
    Replace(Table),
    /// Withdraw a live table by name.
    Remove(String),
    /// Run discovery with this table as the query (column 0 is the probe
    /// column). Its keys are a subset of one live table's keys, so a
    /// containment-1.0 match always exists at query time.
    Query(Table),
}

impl ChurnOp {
    /// Apply a mutation op to a lake (queries are no-ops). Returns `true`
    /// when the lake changed.
    pub fn apply(&self, lake: &mut DataLake) -> bool {
        match self {
            ChurnOp::Add(t) => {
                lake.add_table(t.clone()).expect("trace names are unique");
                true
            }
            ChurnOp::Replace(t) => {
                lake.replace_table(t.clone());
                true
            }
            ChurnOp::Remove(name) => {
                lake.remove_table(name).expect("trace removes live tables");
                true
            }
            ChurnOp::Query(_) => false,
        }
    }
}

/// A generated churn trace.
#[derive(Debug, Clone)]
pub struct ChurnTrace {
    /// The initial lake contents.
    pub initial: Vec<Table>,
    /// The operation trace (valid when applied in order after `initial`).
    pub ops: Vec<ChurnOp>,
}

impl ChurnWorkload {
    fn table(&self, rng: &mut StdRng, name: &str) -> Table {
        let vocab = self.vocab.max(2);
        let rows = self.rows_per_table.clamp(1, vocab);
        // A contiguous window twice the row count: windows overlap across
        // tables, yielding containments anywhere in (0, 1].
        let span = (rows * 2).min(vocab);
        let start = rng.gen_range(0..=(vocab - span));
        let mut pool: Vec<usize> = (start..start + span).collect();
        pool.shuffle(rng);
        pool.truncate(rows);
        pool.sort_unstable();
        let rows: Vec<Vec<Value>> = pool
            .into_iter()
            .map(|j| {
                vec![
                    Value::Text(format!("v{j}")),
                    Value::Int(rng.gen_range(0..1_000_i64)),
                ]
            })
            .collect();
        Table::from_rows(name, &["key", "val"], rows).expect("fixed arity")
    }

    /// Generate the initial lake and a valid interleaved trace. Same spec
    /// + seed → identical trace.
    pub fn generate(&self) -> ChurnTrace {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut next_id = 0usize;
        let mut fresh_name = || {
            let n = format!("churn_t{next_id}");
            next_id += 1;
            n
        };
        let mut alive: Vec<Table> = Vec::with_capacity(self.initial_tables);
        for _ in 0..self.initial_tables.max(1) {
            let name = fresh_name();
            alive.push(self.table(&mut rng, &name));
        }
        let initial = alive.clone();

        let mut ops = Vec::with_capacity(self.ops);
        let mut queries = 0usize;
        for i in 0..self.ops {
            // Queries interleave deterministically (every 4th op) so every
            // trace exercises discovery between mutations.
            if i % 4 == 3 || alive.is_empty() {
                let source = alive.choose(&mut rng).cloned().unwrap_or_else(|| {
                    let name = fresh_name();
                    self.table(&mut rng, &name)
                });
                let keep = rng.gen_range(1..=source.row_count());
                let mut rows: Vec<Vec<Value>> = source.rows().map(|r| vec![r[0].clone()]).collect();
                rows.shuffle(&mut rng);
                rows.truncate(keep);
                queries += 1;
                let q = Table::from_rows(&format!("churn_q{queries}"), &["key"], rows)
                    .expect("fixed arity");
                ops.push(ChurnOp::Query(q));
                continue;
            }
            match rng.gen_range(0..3) {
                0 => {
                    let name = fresh_name();
                    let t = self.table(&mut rng, &name);
                    alive.push(t.clone());
                    ops.push(ChurnOp::Add(t));
                }
                1 if alive.len() > 1 => {
                    let idx = rng.gen_range(0..alive.len());
                    let name = alive.remove(idx).name().to_string();
                    ops.push(ChurnOp::Remove(name));
                }
                _ => {
                    let idx = rng.gen_range(0..alive.len());
                    let name = alive[idx].name().to_string();
                    let t = self.table(&mut rng, &name);
                    alive[idx] = t.clone();
                    ops.push(ChurnOp::Replace(t));
                }
            }
        }
        ChurnTrace { initial, ops }
    }
}

/// Parameters of the skewed top-k discovery workload: a lake whose
/// column-domain sizes follow a power law — a few huge "hub" tables whose
/// domains contain whole query universes, and a long tail of small tables
/// whose domains can never reach the containment threshold for a
/// realistically sized query.
///
/// This is the regime open-data lakes actually exhibit (a handful of
/// master registries, thousands of small extracts) and the one where
/// budget-aware partition scheduling pays: equi-depth size partitioning
/// puts the long tail into partitions whose upper size bound caps their
/// best possible containment below the threshold, so a top-k planner can
/// prove them irrelevant without probing, while a probe-all scan pays for
/// every partition and verifies every near-miss candidate.
#[derive(Debug, Clone)]
pub struct TopKWorkload {
    /// Total lake tables. Table of rank `r` holds
    /// `max(tail_rows, hub_rows / (r + 1))` distinct keys — a `1/x` decay
    /// from a few hubs down to the flat tail.
    pub tables: usize,
    /// Number of leading ranks that count as hubs; queries are drawn as
    /// subsets of a hub's keys, so every query has a containment-1.0 hub.
    pub hub_tables: usize,
    /// Distinct keys of the largest (rank-0) table.
    pub hub_rows: usize,
    /// Distinct keys of every tail table (the decay floor).
    pub tail_rows: usize,
    /// Size of the shared token universe. Every table draws its keys from
    /// a random contiguous window, so tail tables overlap hubs enough to
    /// surface as near-miss candidates without ever passing verification.
    pub vocab: usize,
    /// Number of query tables to generate.
    pub queries: usize,
    /// Distinct keys per query table.
    pub query_rows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TopKWorkload {
    fn default() -> Self {
        TopKWorkload {
            tables: 200,
            hub_tables: 4,
            hub_rows: 192,
            tail_rows: 8,
            vocab: 4_000,
            queries: 8,
            query_rows: 96,
            seed: 29,
        }
    }
}

/// A generated skewed lake plus its query tables.
#[derive(Debug, Clone)]
pub struct TopKTrace {
    /// The lake tables, rank order (sizes descending).
    pub tables: Vec<Table>,
    /// Query tables (single `key` column); query `i` is a subset of hub
    /// `i % hub_tables`'s keys.
    pub queries: Vec<Table>,
}

impl TopKWorkload {
    fn size_of(&self, rank: usize) -> usize {
        (self.hub_rows / (rank + 1)).max(self.tail_rows.max(1))
    }

    /// Generate the lake and queries. Same spec + seed → identical output.
    /// Degenerate specs are clamped rather than panicking: at least one
    /// table always exists, and at least the rank-0 table counts as a hub
    /// so every requested query has a source.
    pub fn generate(&self) -> TopKTrace {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let vocab = self.vocab.max(2 * self.hub_rows.max(2));
        let tables_n = self.tables.max(1);
        let hubs = self.hub_tables.clamp(1, tables_n);
        let mut tables = Vec::with_capacity(tables_n);
        let mut hub_keys: Vec<Vec<usize>> = Vec::with_capacity(hubs);
        for rank in 0..tables_n {
            let size = self.size_of(rank).min(vocab);
            let span = (size * 2).min(vocab);
            let start = rng.gen_range(0..=(vocab - span));
            let mut pool: Vec<usize> = (start..start + span).collect();
            pool.shuffle(&mut rng);
            pool.truncate(size);
            pool.sort_unstable();
            if rank < hubs {
                hub_keys.push(pool.clone());
            }
            let rows: Vec<Vec<Value>> = pool
                .into_iter()
                .map(|j| {
                    vec![
                        Value::Text(format!("v{j}")),
                        Value::Int(rng.gen_range(0..1_000_i64)),
                    ]
                })
                .collect();
            tables.push(
                Table::from_rows(&format!("topk_t{rank}"), &["key", "val"], rows)
                    .expect("fixed arity"),
            );
        }
        let mut queries = Vec::with_capacity(self.queries);
        for qi in 0..self.queries {
            let hub = &hub_keys[qi % hub_keys.len()];
            let mut keys = hub.clone();
            keys.shuffle(&mut rng);
            keys.truncate(self.query_rows.clamp(1, hub.len()));
            let rows: Vec<Vec<Value>> = keys
                .into_iter()
                .map(|j| vec![Value::Text(format!("v{j}"))])
                .collect();
            queries.push(
                Table::from_rows(&format!("topk_q{qi}"), &["key"], rows).expect("fixed arity"),
            );
        }
        TopKTrace { tables, queries }
    }
}

/// Parameters of the **type-dense SANTOS workload**: a lake whose column
/// values are drawn from a small roster of semantic types, so the SANTOS
/// type inverted index is *dense* — every type's posting list spans a
/// large fraction of the lake, and a typed query retrieves most tables as
/// candidates. This is the regime where unbounded type-index retrieval
/// degenerates into a full scan (the motivation for the candidate cap):
/// open-data lakes reuse the same handful of entity vocabularies
/// (places, agencies, dates) across hundreds of thousands of tables.
///
/// Each table draws an (unordered) tuple of `cols_per_table` distinct
/// types and fills each column from that type's entity pool, diluted by a
/// per-table unknown-token noise rate in `[0, max_noise]` — so annotation
/// confidences (and therefore candidate scores) vary continuously and
/// bound-ranked retrieval has a real ordering to exploit. Queries copy a
/// random lake table's type tuple with clean (noise-free) columns, so
/// every query has full-tuple strong matches, a band of partial-overlap
/// candidates, and a long tail of single-type near-misses.
#[derive(Debug, Clone)]
pub struct SantosWorkload {
    /// Lake tables.
    pub tables: usize,
    /// Distinct semantic types in the synthesized KB. Density rises as
    /// this shrinks relative to `tables * cols_per_table`.
    pub types: usize,
    /// Entity tokens per type pool.
    pub entities_per_type: usize,
    /// Typed columns per table (and per query).
    pub cols_per_table: usize,
    /// Rows per table.
    pub rows_per_table: usize,
    /// Upper bound of the per-table unknown-token rate. Keep it below
    /// ~0.5 so every column stays confidently annotated.
    pub max_noise: f64,
    /// Query tables to generate.
    pub queries: usize,
    /// Rows per query table.
    pub query_rows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SantosWorkload {
    fn default() -> Self {
        SantosWorkload {
            tables: 800,
            types: 8,
            entities_per_type: 64,
            cols_per_table: 3,
            rows_per_table: 16,
            max_noise: 0.3,
            queries: 6,
            query_rows: 12,
            seed: 31,
        }
    }
}

/// A generated type-dense lake, its synthesized KB, and typed queries.
#[derive(Debug, Clone)]
pub struct SantosTrace {
    /// The lake tables.
    pub tables: Vec<Table>,
    /// Query tables (typed columns, intent column 0); query `i` reuses the
    /// type tuple of lake table `i * tables / queries`.
    pub queries: Vec<Table>,
    /// The KB typing every entity pool (one leaf type per entity).
    pub kb: KnowledgeBase,
}

impl SantosWorkload {
    fn entity(&self, ty: usize, i: usize) -> String {
        format!("ent{ty}x{i}")
    }

    /// Draw one typed column: `rows` tokens from the type's pool, with
    /// `noise` of them replaced by KB-unknown junk.
    fn column(
        &self,
        rng: &mut StdRng,
        ty: usize,
        rows: usize,
        noise: f64,
        junk_tag: &str,
    ) -> Vec<Value> {
        let pool = self.entities_per_type.max(1);
        (0..rows)
            .map(|i| {
                if rng.gen_bool(noise) {
                    Value::Text(format!("junk_{junk_tag}_{i}"))
                } else {
                    Value::Text(self.entity(ty, rng.gen_range(0..pool)))
                }
            })
            .collect()
    }

    fn typed_table(
        &self,
        rng: &mut StdRng,
        name: &str,
        tuple: &[usize],
        rows: usize,
        noise: f64,
    ) -> Table {
        let cols: Vec<String> = (0..tuple.len()).map(|c| format!("c{c}")).collect();
        let columns: Vec<Vec<Value>> = tuple
            .iter()
            .enumerate()
            .map(|(c, &ty)| self.column(rng, ty, rows, noise, &format!("{name}_{c}")))
            .collect();
        let row_data: Vec<Vec<Value>> = (0..rows)
            .map(|r| columns.iter().map(|col| col[r].clone()).collect())
            .collect();
        Table::from_rows(name, &cols, row_data).expect("fixed arity")
    }

    /// Generate the KB, lake and queries. Same spec + seed → identical
    /// output. Degenerate specs are clamped (at least one table, one type,
    /// one column) rather than panicking.
    pub fn generate(&self) -> SantosTrace {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let types = self.types.max(1);
        let cols = self.cols_per_table.clamp(1, types);
        let tables_n = self.tables.max(1);

        let mut kb = KbBuilder::new();
        for ty in 0..types {
            kb.add_type(&format!("stype{ty}"), None);
        }
        for ty in 0..types {
            for i in 0..self.entities_per_type.max(1) {
                kb.add_entity(&self.entity(ty, i), &[&format!("stype{ty}")]);
            }
        }
        let kb = kb.build();

        let mut all_types: Vec<usize> = (0..types).collect();
        let mut tables = Vec::with_capacity(tables_n);
        let mut tuples: Vec<Vec<usize>> = Vec::with_capacity(tables_n);
        for r in 0..tables_n {
            all_types.shuffle(&mut rng);
            let tuple: Vec<usize> = all_types[..cols].to_vec();
            let noise = rng.gen_range(0.0..=self.max_noise.clamp(0.0, 0.45));
            tables.push(self.typed_table(
                &mut rng,
                &format!("santos_t{r}"),
                &tuple,
                self.rows_per_table.max(1),
                noise,
            ));
            tuples.push(tuple);
        }

        let mut queries = Vec::with_capacity(self.queries);
        for qi in 0..self.queries {
            // Spread query tuples across the lake deterministically so
            // every query has exact-tuple matches to recall.
            let source = (qi * tables_n / self.queries.max(1)) % tables_n;
            queries.push(self.typed_table(
                &mut rng,
                &format!("santos_q{qi}"),
                &tuples[source],
                self.query_rows.max(1),
                0.0,
            ));
        }
        SantosTrace {
            tables,
            queries,
            kb,
        }
    }
}

/// Parameters of the **serving workload**: a mixed read/churn request
/// trace over a skewed ([`TopKWorkload`]-shaped) lake, the input of the
/// concurrent load harness (`dialite-bench::load`).
///
/// Reads draw from a fixed pool of distinct query tables under a zipfian
/// rank distribution — a few hot queries dominate, a long tail trickles —
/// which is how discovery traffic over open-data portals actually skews
/// (a handful of popular datasets absorb most lookups). Writes are churn
/// mutations shaped like [`ChurnWorkload`]'s: adds of fresh tables,
/// replaces and removes of live ones. The read share is exact
/// (`round(ops * read_ratio)` queries), with kinds shuffled through the
/// trace so every prefix mixes both.
#[derive(Debug, Clone)]
pub struct ServingWorkload {
    /// Lake shape: total tables (skewed sizes, see [`TopKWorkload`]).
    pub tables: usize,
    /// Lake shape: leading hub tables queries are drawn from.
    pub hub_tables: usize,
    /// Lake shape: distinct keys of the rank-0 hub.
    pub hub_rows: usize,
    /// Lake shape: distinct keys of every tail table.
    pub tail_rows: usize,
    /// Lake shape: shared token universe size.
    pub vocab: usize,
    /// Distinct query tables in the request pool.
    pub query_pool: usize,
    /// Distinct keys per query table.
    pub query_rows: usize,
    /// Total request-trace operations (queries + mutations).
    pub ops: usize,
    /// Fraction of ops that are queries, in `[0, 1]`. The trace holds
    /// exactly `round(ops * read_ratio)` queries.
    pub read_ratio: f64,
    /// Zipf exponent of the query-rank distribution; `0.0` is uniform,
    /// `~1.0` is classic web-traffic skew.
    pub zipf_s: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ServingWorkload {
    fn default() -> Self {
        ServingWorkload {
            tables: 200,
            hub_tables: 4,
            hub_rows: 192,
            tail_rows: 8,
            vocab: 4_000,
            query_pool: 32,
            query_rows: 64,
            ops: 512,
            read_ratio: 0.9,
            zipf_s: 1.0,
            seed: 31,
        }
    }
}

/// One request of a serving trace.
#[derive(Debug, Clone, PartialEq)]
pub enum ServingOp {
    /// Run discovery with query-pool table of this index (column 0 is the
    /// probe column).
    Query(usize),
    /// Apply a lake mutation. Under concurrent replay use
    /// [`ServingOp::apply_tolerant`], not [`ChurnOp::apply`]: threads
    /// drain the trace through a shared cursor, so mutations can land in
    /// an order where a strict apply would panic on a name conflict.
    Mutate(ChurnOp),
}

impl ServingOp {
    /// Apply a mutation to a lake, tolerating any interleaving: adds and
    /// replaces become upserts, removes of absent tables are no-ops.
    /// Queries are no-ops. Returns `true` when the lake changed.
    pub fn apply_tolerant(&self, lake: &mut DataLake) -> bool {
        match self {
            ServingOp::Query(_) => false,
            ServingOp::Mutate(ChurnOp::Query(_)) => false,
            ServingOp::Mutate(ChurnOp::Add(t)) | ServingOp::Mutate(ChurnOp::Replace(t)) => {
                lake.upsert(t.clone());
                true
            }
            ServingOp::Mutate(ChurnOp::Remove(name)) => lake.remove(name).is_some(),
        }
    }
}

/// A generated serving trace.
#[derive(Debug, Clone)]
pub struct ServingTrace {
    /// The initial lake contents (skewed sizes, rank order).
    pub initial: Vec<Table>,
    /// The query-table pool; [`ServingOp::Query`] indexes into it.
    pub pool: Vec<Table>,
    /// The request trace. Mutations are valid when applied in order, and
    /// safe under any interleaving via [`ServingOp::apply_tolerant`].
    pub ops: Vec<ServingOp>,
}

impl ServingTrace {
    /// Number of query ops in the trace.
    pub fn query_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, ServingOp::Query(_)))
            .count()
    }
}

/// Sample from a zipfian rank distribution via precomputed cumulative
/// weights `w(r) = 1 / (r + 1)^s` and a binary search per draw.
struct ZipfRanks {
    cumulative: Vec<f64>,
}

impl ZipfRanks {
    fn new(n: usize, s: f64) -> ZipfRanks {
        let mut cumulative = Vec::with_capacity(n.max(1));
        let mut total = 0.0f64;
        for r in 0..n.max(1) {
            total += 1.0 / ((r + 1) as f64).powf(s);
            cumulative.push(total);
        }
        ZipfRanks { cumulative }
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let u: f64 = rng.gen::<f64>() * total;
        self.cumulative
            .partition_point(|&c| c <= u)
            .min(self.cumulative.len() - 1)
    }
}

impl ServingWorkload {
    /// Generate the initial lake, the query pool and the request trace.
    /// Same spec + seed → identical output.
    pub fn generate(&self) -> ServingTrace {
        // The lake and query pool reuse the skewed top-k generator so
        // serving numbers stay comparable to the single-caller top-k
        // trajectory (BENCH_topk.json).
        let base = TopKWorkload {
            tables: self.tables,
            hub_tables: self.hub_tables,
            hub_rows: self.hub_rows,
            tail_rows: self.tail_rows,
            vocab: self.vocab,
            queries: self.query_pool.max(1),
            query_rows: self.query_rows,
            seed: self.seed,
        }
        .generate();

        // Distinct stream from the lake generator's so trace shape and
        // lake shape vary independently of each other under one seed.
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x5e59_11a6_0dd5_ee1d);
        let zipf = ZipfRanks::new(base.queries.len(), self.zipf_s.max(0.0));

        // Exact read share: fix the kind of every slot, then shuffle.
        let ops_n = self.ops;
        let reads = ((ops_n as f64) * self.read_ratio.clamp(0.0, 1.0)).round() as usize;
        let reads = reads.min(ops_n);
        let mut kinds: Vec<bool> = Vec::with_capacity(ops_n);
        kinds.extend(std::iter::repeat_n(true, reads));
        kinds.extend(std::iter::repeat_n(false, ops_n - reads));
        kinds.shuffle(&mut rng);

        // Mutations follow ChurnWorkload's alive-set logic so an in-order
        // replay is strictly valid (the linearization oracle relies on
        // that) while names stay distinct from the initial lake's.
        let churn = ChurnWorkload {
            rows_per_table: self.tail_rows.max(8),
            vocab: self.vocab,
            ..ChurnWorkload::default()
        };
        let mut alive: Vec<Table> = base.tables.clone();
        let mut next_id = 0usize;
        let mut ops = Vec::with_capacity(ops_n);
        for is_read in kinds {
            if is_read {
                ops.push(ServingOp::Query(zipf.sample(&mut rng)));
                continue;
            }
            match rng.gen_range(0..3) {
                0 => {
                    let name = format!("serve_t{next_id}");
                    next_id += 1;
                    let t = churn.table(&mut rng, &name);
                    alive.push(t.clone());
                    ops.push(ServingOp::Mutate(ChurnOp::Add(t)));
                }
                1 if alive.len() > 1 => {
                    let idx = rng.gen_range(0..alive.len());
                    let name = alive.remove(idx).name().to_string();
                    ops.push(ServingOp::Mutate(ChurnOp::Remove(name)));
                }
                _ => {
                    let idx = rng.gen_range(0..alive.len());
                    let name = alive[idx].name().to_string();
                    let t = churn.table(&mut rng, &name);
                    alive[idx] = t.clone();
                    ops.push(ServingOp::Mutate(ChurnOp::Replace(t)));
                }
            }
        }
        ServingTrace {
            initial: base.tables,
            pool: base.queries,
            ops,
        }
    }
}

/// Parameters of the sharded-index scale workload: a lake *streamed*
/// table-by-table — table `i` is a pure function of the spec and
/// `seed + i` ([`StreamedLakeWorkload::table`]), so a 100k-table lake is
/// generated with O(1) generator state, any slot stripe can be
/// re-generated independently, and two processes streaming the same spec
/// agree byte-for-byte without ever holding a shared `Vec<Table>`.
///
/// Tables are tiny (a `key` token column drawn from a contiguous vocab
/// window, plus an integer `val` column): the workload measures index
/// *fan-out* — how per-shard scored/verified work scales with shard
/// count — not per-table cost. Key tokens are synthetic (`w<j>`),
/// unknown to any curated KB, so queries hit the SANTOS leg's *typeless*
/// path. Under a finite candidate cap that path runs capped
/// posting-index retrieval (best-bound-first, so per-shard work depends
/// on overlap, not shard size); under an **unlimited** stage budget —
/// what the `sharded` bench group queries with — it takes the exhaustive
/// typeless full scan and scores exactly the tables its shard owns: the
/// cleanest near-linear work signal a sharded bench can gate on.
#[derive(Debug, Clone)]
pub struct StreamedLakeWorkload {
    /// Total tables streamed into the lake.
    pub tables: usize,
    /// Distinct key tokens per table.
    pub rows_per_table: usize,
    /// Shared token universe. Each table draws its keys from a random
    /// contiguous window, so overlapping windows yield the full spectrum
    /// of containment relations (as in [`ChurnWorkload`]).
    pub vocab: usize,
    /// Query tables, drawn as key-subsets of evenly spaced lake tables so
    /// every query has a containment-1.0 match somewhere in the lake.
    pub queries: usize,
    /// Distinct keys per query table.
    pub query_rows: usize,
    /// Base RNG seed; table `i` derives its own stream from `seed`
    /// and `i`, the query set from `seed` alone.
    pub seed: u64,
}

impl Default for StreamedLakeWorkload {
    fn default() -> Self {
        StreamedLakeWorkload {
            tables: 100_000,
            rows_per_table: 4,
            vocab: 50_000,
            queries: 8,
            query_rows: 16,
            seed: 71,
        }
    }
}

impl StreamedLakeWorkload {
    /// The `i`-th lake table (`streamed_t<i>`), generated from its own
    /// seeded stream: same spec + same `i` → identical table, regardless
    /// of which other tables were ever materialized.
    pub fn table(&self, i: usize) -> Table {
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(1 + i as u64));
        let vocab = self.vocab.max(2);
        let rows = self.rows_per_table.clamp(1, vocab);
        let span = (rows * 2).min(vocab);
        let start = rng.gen_range(0..=(vocab - span));
        let mut pool: Vec<usize> = (start..start + span).collect();
        pool.shuffle(&mut rng);
        pool.truncate(rows);
        pool.sort_unstable();
        let rows: Vec<Vec<Value>> = pool
            .into_iter()
            .map(|j| {
                vec![
                    Value::Text(format!("w{j}")),
                    Value::Int(rng.gen_range(0..1_000_i64)),
                ]
            })
            .collect();
        Table::from_rows(&format!("streamed_t{i}"), &["key", "val"], rows).expect("fixed arity")
    }

    /// Stream every lake table in slot order, one at a time.
    pub fn stream(&self) -> impl Iterator<Item = Table> + '_ {
        (0..self.tables).map(|i| self.table(i))
    }

    /// Stream the whole workload into a fresh [`DataLake`] (slot `i`
    /// holds [`StreamedLakeWorkload::table`]`(i)`).
    pub fn lake(&self) -> DataLake {
        let mut lake = DataLake::new();
        for t in self.stream() {
            lake.add_table(t).expect("streamed names are unique");
        }
        lake
    }

    /// The query set: query `q` keeps a random `query_rows`-subset of the
    /// keys of an evenly spaced lake table, so a containment-1.0 match
    /// always exists and queries spread across every slot stripe.
    pub fn queries(&self) -> Vec<Table> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let stride = (self.tables / self.queries.max(1)).max(1);
        let mut out = Vec::with_capacity(self.queries);
        for q in 0..self.queries {
            let source = self.table((q * stride) % self.tables.max(1));
            let mut rows: Vec<Vec<Value>> = source.rows().map(|r| vec![r[0].clone()]).collect();
            rows.shuffle(&mut rng);
            rows.truncate(self.query_rows.max(1));
            out.push(
                Table::from_rows(&format!("streamed_q{q}"), &["key"], rows).expect("fixed arity"),
            );
        }
        out
    }
}

/// Boilerplate header vocabulary every topical cluster mixes in —
/// the `id`/`name`/`year` columns that show up across a whole open-data
/// corpus regardless of topic.
const GLOBAL_HEADERS: &[&str] = &[
    "record", "id", "name", "year", "value", "code", "region", "status", "date", "count",
    "category", "total",
];

/// Parameters of the **heterogeneous corpus-scale lake workload**: a lake
/// *streamed* table-by-table under the same O(1)-state contract as
/// [`StreamedLakeWorkload`] — table `i` is a pure function of the spec and
/// `seed + i` ([`HeterogeneousLakeWorkload::table`]) — but shaped like a
/// real open-data corpus instead of a uniform grid:
///
/// * **Zipf-distributed table sizes**: row counts double across Zipf-ranked
///   size classes, so most tables sit at the 2-row floor while a thin head
///   reaches `max_rows` — the registry-vs-extract skew open-data portals
///   document.
/// * **Overlapping topical clusters**: every table belongs to a
///   Zipf-popular primary cluster (and sometimes a secondary one), drawing
///   both its column headers and its value vocabulary from the cluster's
///   pools plus the shared `GLOBAL_HEADERS` boilerplate — so header
///   vocab overlaps within and across clusters the way topically related
///   datasets share schema fragments.
/// * **Dirt**: configurable null and dirty-cell rates, plus *sparse*
///   columns that are mostly null — except column 0, which stays clean so
///   every table keeps a usable token domain for value-overlap queries.
///
/// Header tokens are fully alphanumeric (`h<cluster>x<t>`) so each header
/// survives `dialite_text::word_tokens` as a single token — the contract
/// the metadata-aware discovery engine indexes on.
#[derive(Debug, Clone)]
pub struct HeterogeneousLakeWorkload {
    /// Total tables streamed into the lake.
    pub tables: usize,
    /// Topical clusters; each has its own header and value vocabularies.
    /// Cluster popularity is Zipf-distributed (`zipf_s`).
    pub clusters: usize,
    /// Header tokens per cluster pool.
    pub cluster_headers: usize,
    /// Maximum columns per table (column count is Zipf-skewed toward 1).
    pub max_cols: usize,
    /// Maximum rows per table (sizes double across Zipf-ranked classes
    /// from a 2-row floor up to this cap).
    pub max_rows: usize,
    /// Zipf exponent shared by the size, column-count and cluster
    /// popularity distributions; `0.0` is uniform.
    pub zipf_s: f64,
    /// Distinct value tokens per cluster vocabulary.
    pub value_vocab: usize,
    /// Fraction of non-key cells nulled out.
    pub null_rate: f64,
    /// Fraction of non-key cells mangled into near-unique dirty tokens.
    pub dirty_rate: f64,
    /// Probability a non-key column is *sparse* (mostly null).
    pub sparse_rate: f64,
    /// Query tables generated by [`HeterogeneousLakeWorkload::queries`]
    /// and header queries by
    /// [`HeterogeneousLakeWorkload::header_queries`].
    pub queries: usize,
    /// Distinct keys per token-mode query table.
    pub query_rows: usize,
    /// Base RNG seed; table `i` derives its own stream from `seed` and
    /// `i`, the query sets and serving trace from `seed` alone.
    pub seed: u64,
}

impl Default for HeterogeneousLakeWorkload {
    fn default() -> Self {
        HeterogeneousLakeWorkload {
            tables: 100_000,
            clusters: 24,
            cluster_headers: 16,
            max_cols: 6,
            max_rows: 256,
            zipf_s: 1.1,
            value_vocab: 4_000,
            null_rate: 0.08,
            dirty_rate: 0.04,
            sparse_rate: 0.25,
            queries: 8,
            query_rows: 16,
            seed: 83,
        }
    }
}

impl HeterogeneousLakeWorkload {
    /// One header token of a cluster's pool — fully alphanumeric so
    /// `word_tokens` keeps it whole.
    fn cluster_header(&self, cluster: usize, t: usize) -> String {
        format!("h{cluster}x{t}")
    }

    /// One value token of a cluster's vocabulary.
    fn cluster_value(&self, cluster: usize, t: usize) -> String {
        format!("c{cluster}v{t}")
    }

    /// The primary topical cluster of table `i` — re-derived from the
    /// table's own seeded stream (the cluster is its *first* draw), so
    /// callers can label any table without materializing it.
    pub fn cluster_of(&self, i: usize) -> usize {
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(1 + i as u64));
        ZipfRanks::new(self.clusters.max(1), self.zipf_s.max(0.0)).sample(&mut rng)
    }

    /// The `i`-th lake table (`hetero_t<i>`), generated from its own
    /// seeded stream: same spec + same `i` → identical table, regardless
    /// of which other tables were ever materialized.
    pub fn table(&self, i: usize) -> Table {
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(1 + i as u64));
        let clusters = self.clusters.max(1);
        let zipf_clusters = ZipfRanks::new(clusters, self.zipf_s.max(0.0));
        // First draw: the primary cluster (the cluster_of contract).
        let primary = zipf_clusters.sample(&mut rng);
        let secondary = if clusters > 1 && rng.gen_bool(0.3) {
            Some(zipf_clusters.sample(&mut rng))
        } else {
            None
        };

        // Zipf-ranked size classes double rows from the 2-row floor.
        let max_rows = self.max_rows.max(2);
        let mut classes = 1usize;
        while (2usize << (classes - 1)) < max_rows {
            classes += 1;
        }
        let z = ZipfRanks::new(classes, self.zipf_s.max(0.0)).sample(&mut rng);
        let rows = (2usize << z).min(max_rows);
        let cols = 1 + ZipfRanks::new(self.max_cols.max(1), self.zipf_s.max(0.0)).sample(&mut rng);

        let headers_per_cluster = self.cluster_headers.max(1);
        let vocab = self.value_vocab.max(1);
        let null_rate = self.null_rate.clamp(0.0, 1.0);
        let dirty_rate = self.dirty_rate.clamp(0.0, 1.0);
        let sparse_rate = self.sparse_rate.clamp(0.0, 1.0);

        // Per-column plan: header, value cluster, sparsity, numeric-ness.
        let mut headers: Vec<String> = Vec::with_capacity(cols);
        let mut value_cluster: Vec<usize> = Vec::with_capacity(cols);
        let mut sparse: Vec<bool> = Vec::with_capacity(cols);
        let mut numeric: Vec<bool> = Vec::with_capacity(cols);
        let mut seen: std::collections::HashSet<String> = std::collections::HashSet::new();
        for c in 0..cols {
            let (mut header, vc) = if c == 0 {
                // The anchor column: always a primary-cluster header over
                // primary-cluster values, clean and dense.
                (
                    self.cluster_header(primary, rng.gen_range(0..headers_per_cluster)),
                    primary,
                )
            } else {
                match (rng.gen_range(0..4), secondary) {
                    (0, _) => (
                        GLOBAL_HEADERS[rng.gen_range(0..GLOBAL_HEADERS.len())].to_string(),
                        primary,
                    ),
                    (1, Some(s)) => (
                        self.cluster_header(s, rng.gen_range(0..headers_per_cluster)),
                        s,
                    ),
                    _ => (
                        self.cluster_header(primary, rng.gen_range(0..headers_per_cluster)),
                        primary,
                    ),
                }
            };
            if !seen.insert(header.clone()) {
                // Schemas require unique headers; real corpora dedupe
                // repeated ones with positional suffixes.
                header = format!("{header} col{c}");
                seen.insert(header.clone());
            }
            headers.push(header);
            value_cluster.push(vc);
            sparse.push(c != 0 && rng.gen_bool(sparse_rate));
            numeric.push(c != 0 && rng.gen_bool(0.25));
        }

        let mut data: Vec<Vec<Value>> = Vec::with_capacity(rows);
        for r in 0..rows {
            let mut row = Vec::with_capacity(cols);
            for c in 0..cols {
                if c == 0 {
                    row.push(Value::Text(
                        self.cluster_value(primary, rng.gen_range(0..vocab)),
                    ));
                    continue;
                }
                if sparse[c] && rng.gen_bool(0.9) {
                    row.push(Value::null_missing());
                    continue;
                }
                if rng.gen_bool(null_rate) {
                    row.push(Value::null_missing());
                    continue;
                }
                if numeric[c] {
                    row.push(Value::Int(rng.gen_range(0..1_000_000_i64)));
                    continue;
                }
                let tok = self.cluster_value(value_cluster[c], rng.gen_range(0..vocab));
                if rng.gen_bool(dirty_rate) {
                    // A mangled, near-unique cell — the typo/encoding dirt
                    // profiling studies report for open-data CSVs.
                    row.push(Value::Text(format!("{tok}zz{r}")));
                } else {
                    row.push(Value::Text(tok));
                }
            }
            data.push(row);
        }
        Table::from_rows(&format!("hetero_t{i}"), &headers, data).expect("fixed arity")
    }

    /// Stream every lake table in slot order, one at a time.
    pub fn stream(&self) -> impl Iterator<Item = Table> + '_ {
        (0..self.tables).map(|i| self.table(i))
    }

    /// Stream the whole workload into a fresh [`DataLake`] (slot `i`
    /// holds [`HeterogeneousLakeWorkload::table`]`(i)`).
    pub fn lake(&self) -> DataLake {
        let mut lake = DataLake::new();
        for t in self.stream() {
            lake.add_table(t).expect("streamed names are unique");
        }
        lake
    }

    /// The **token-mode** query set: query `q` (`hetero_q<q>`) keeps a
    /// random `query_rows`-subset of the anchor-column tokens of an evenly
    /// spaced lake table, so a high-overlap match always exists and
    /// queries spread across every slot stripe (and every cluster the
    /// stripe touches).
    pub fn queries(&self) -> Vec<Table> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let stride = (self.tables / self.queries.max(1)).max(1);
        let mut out = Vec::with_capacity(self.queries);
        for q in 0..self.queries {
            let source = self.table((q * stride) % self.tables.max(1));
            let mut rows: Vec<Vec<Value>> = source.rows().map(|r| vec![r[0].clone()]).collect();
            rows.shuffle(&mut rng);
            rows.truncate(self.query_rows.max(1));
            let header = source.schema().column(0).name.clone();
            out.push(
                Table::from_rows(&format!("hetero_q{q}"), &[header], rows).expect("fixed arity"),
            );
        }
        out
    }

    /// The **metadata-mode** query set: query `q` (`hetero_hq<q>`)
    /// carries the first three header tokens of cluster `q % clusters` as
    /// its column headers (values are placeholders) — the
    /// "find tables annotated like this" probe the metadata-aware engine
    /// answers from its header-token index.
    pub fn header_queries(&self) -> Vec<Table> {
        let clusters = self.clusters.max(1);
        let cols = self.cluster_headers.clamp(1, 3);
        (0..self.queries)
            .map(|q| {
                let cluster = q % clusters;
                let headers: Vec<String> =
                    (0..cols).map(|t| self.cluster_header(cluster, t)).collect();
                let row = vec![Value::Text("probe".to_string()); cols];
                Table::from_rows(&format!("hetero_hq{q}"), &headers, vec![row])
                    .expect("fixed arity")
            })
            .collect()
    }

    /// A zipfian read/churn **serving trace** over the heterogeneous lake:
    /// `(query pool, ops)`. Reads draw from
    /// [`queries`](HeterogeneousLakeWorkload::queries) under the spec's
    /// Zipf skew; writes are adds of fresh streamed tables
    /// (`hetero_t<tables + n>`), plus removes and in-place replaces of
    /// live ones. The trace is valid replayed strictly in order against
    /// [`lake`](HeterogeneousLakeWorkload::lake) and safe under any
    /// interleaving via [`ServingOp::apply_tolerant`]. The initial lake is
    /// *not* materialized here — stream it separately, preserving the
    /// O(1)-state contract.
    pub fn serving_ops(&self, ops: usize, read_ratio: f64) -> (Vec<Table>, Vec<ServingOp>) {
        let pool = self.queries();
        // Distinct stream from the table generator's so trace shape and
        // lake shape vary independently under one seed.
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x7e11_a55e_d1ce_0afe);
        let zipf = ZipfRanks::new(pool.len().max(1), self.zipf_s.max(0.0));

        let reads = ((ops as f64) * read_ratio.clamp(0.0, 1.0)).round() as usize;
        let reads = reads.min(ops);
        let mut kinds: Vec<bool> = Vec::with_capacity(ops);
        kinds.extend(std::iter::repeat_n(true, reads));
        kinds.extend(std::iter::repeat_n(false, ops - reads));
        kinds.shuffle(&mut rng);

        let mut alive: Vec<String> = (0..self.tables).map(|i| format!("hetero_t{i}")).collect();
        let mut next = 0usize;
        let mut out = Vec::with_capacity(ops);
        for is_read in kinds {
            if is_read {
                out.push(ServingOp::Query(zipf.sample(&mut rng)));
                continue;
            }
            match rng.gen_range(0..3) {
                0 => {
                    let t = self.table(self.tables + next);
                    next += 1;
                    alive.push(t.name().to_string());
                    out.push(ServingOp::Mutate(ChurnOp::Add(t)));
                }
                1 if alive.len() > 1 => {
                    let idx = rng.gen_range(0..alive.len());
                    let name = alive.swap_remove(idx);
                    out.push(ServingOp::Mutate(ChurnOp::Remove(name)));
                }
                _ if !alive.is_empty() => {
                    let idx = rng.gen_range(0..alive.len());
                    let name = alive[idx].clone();
                    let t = self.table(self.tables + next).renamed(&name);
                    next += 1;
                    out.push(ServingOp::Mutate(ChurnOp::Replace(t)));
                }
                _ => {
                    let t = self.table(self.tables + next);
                    next += 1;
                    alive.push(t.name().to_string());
                    out.push(ServingOp::Mutate(ChurnOp::Add(t)));
                }
            }
        }
        (pool, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fd_workload_shapes() {
        let w = FdWorkload {
            tables: 3,
            rows: 20,
            ..FdWorkload::default()
        };
        let tables = w.generate();
        assert_eq!(tables.len(), 3);
        for (i, t) in tables.iter().enumerate() {
            assert_eq!(t.row_count(), 20);
            assert_eq!(t.column_count(), 2);
            assert_eq!(t.column_index("key"), Some(0));
            assert_eq!(t.column_index(&format!("attr_{i}")), Some(1));
        }
    }

    #[test]
    fn fd_workload_is_deterministic() {
        let a = FdWorkload::default().generate();
        let b = FdWorkload::default().generate();
        assert_eq!(a, b);
    }

    #[test]
    fn smaller_key_domain_means_more_shared_keys() {
        let dense = FdWorkload {
            key_domain: 10,
            ..FdWorkload::default()
        }
        .generate();
        let sparse = FdWorkload {
            key_domain: 10_000,
            ..FdWorkload::default()
        }
        .generate();
        let shared = |tables: &[Table]| {
            let a = tables[0].column_token_set(0);
            let b = tables[1].column_token_set(0);
            a.intersection(&b).count()
        };
        assert!(shared(&dense) > shared(&sparse));
    }

    #[test]
    fn churn_trace_is_deterministic_and_valid() {
        let w = ChurnWorkload::default();
        let a = w.generate();
        let b = w.generate();
        assert_eq!(a.initial.len(), b.initial.len());
        assert_eq!(a.ops.len(), w.ops);
        for (x, y) in a.initial.iter().zip(&b.initial) {
            assert_eq!(x, y);
        }
        // Replaying the trace against a lake never panics: adds are fresh
        // names, removes/replaces hit live tables.
        let mut lake = DataLake::from_tables(a.initial.clone()).unwrap();
        let mut mutations = 0;
        let mut queries = 0;
        for op in &a.ops {
            if op.apply(&mut lake) {
                mutations += 1;
            } else {
                queries += 1;
            }
        }
        assert!(mutations > 0 && queries > 0, "trace must interleave");
        assert!(!lake.is_empty());
    }

    #[test]
    fn churn_queries_have_a_live_full_containment_match() {
        let trace = ChurnWorkload {
            ops: 40,
            ..ChurnWorkload::default()
        }
        .generate();
        let mut lake = DataLake::from_tables(trace.initial.clone()).unwrap();
        for op in &trace.ops {
            if let ChurnOp::Query(q) = op {
                let q_keys = q.column_token_set(0);
                assert!(!q_keys.is_empty());
                let contained = lake.tables().any(|t| {
                    let keys = t.column_token_set(0);
                    q_keys.iter().all(|k| keys.contains(k))
                });
                assert!(contained, "query {} has no superset table", q.name());
            }
            op.apply(&mut lake);
        }
    }

    #[test]
    fn topk_workload_is_skewed_and_every_query_has_a_hub() {
        let w = TopKWorkload::default();
        let trace = w.generate();
        assert_eq!(trace.tables.len(), w.tables);
        assert_eq!(trace.queries.len(), w.queries);
        // Deterministic.
        let again = w.generate();
        assert_eq!(trace.tables, again.tables);
        assert_eq!(trace.queries, again.queries);
        // Power-law skew: sizes descend, and the overwhelming majority of
        // tables sit at the tail floor — below half the query size, so
        // they can never pass a 0.5 containment threshold.
        let sizes: Vec<usize> = trace.tables.iter().map(|t| t.row_count()).collect();
        for pair in sizes.windows(2) {
            assert!(pair[0] >= pair[1], "sizes must descend: {pair:?}");
        }
        let sub_threshold = sizes
            .iter()
            .filter(|&&s| (s as f64) < 0.5 * w.query_rows as f64)
            .count();
        assert!(
            sub_threshold * 10 >= w.tables * 9,
            "at least 90% of tables must be provably below threshold, got {sub_threshold}/{}",
            w.tables
        );
        // Every query is fully contained in its source hub.
        for (qi, q) in trace.queries.iter().enumerate() {
            let hub = &trace.tables[qi % w.hub_tables];
            let hub_keys = hub.column_token_set(0);
            let q_keys = q.column_token_set(0);
            assert!(!q_keys.is_empty());
            assert!(
                q_keys.iter().all(|k| hub_keys.contains(k)),
                "query {qi} must be a subset of {}",
                hub.name()
            );
        }
    }

    #[test]
    fn topk_workload_degenerate_specs_are_clamped_not_panics() {
        // hub_tables: 0 used to index an empty hub vec once queries > 0.
        let trace = TopKWorkload {
            hub_tables: 0,
            tables: 3,
            queries: 2,
            ..TopKWorkload::default()
        }
        .generate();
        assert_eq!(trace.tables.len(), 3);
        assert_eq!(trace.queries.len(), 2);
        // Rank 0 serves as the implicit hub: queries stay contained.
        let hub_keys = trace.tables[0].column_token_set(0);
        for q in &trace.queries {
            assert!(q.column_token_set(0).iter().all(|k| hub_keys.contains(k)));
        }
        // Zero tables also survives.
        let tiny = TopKWorkload {
            tables: 0,
            hub_tables: 0,
            queries: 1,
            ..TopKWorkload::default()
        }
        .generate();
        assert_eq!(tiny.tables.len(), 1);
        assert_eq!(tiny.queries.len(), 1);
    }

    #[test]
    fn santos_workload_is_deterministic_and_type_dense() {
        let w = SantosWorkload {
            tables: 60,
            queries: 4,
            ..SantosWorkload::default()
        };
        let a = w.generate();
        let b = w.generate();
        assert_eq!(a.tables, b.tables);
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.tables.len(), 60);
        assert_eq!(a.queries.len(), 4);

        // Type density: every type pool must back many tables' columns —
        // with 8 types over 60 × 3 columns each type covers ~20 tables,
        // so a typed query retrieves a large candidate fraction.
        for ty in 0..w.types {
            let marker = format!("ent{ty}x");
            let covered = a
                .tables
                .iter()
                .filter(|t| {
                    (0..t.column_count()).any(|c| {
                        t.column_token_set(c)
                            .iter()
                            .any(|tok| tok.starts_with(&marker))
                    })
                })
                .count();
            assert!(
                covered * w.types >= a.tables.len(),
                "type {ty} covers only {covered}/{} tables",
                a.tables.len()
            );
        }

        // Every query column is dominated by KB-known entities (clean
        // queries), so annotation confidence is high and the type path —
        // not the full-scan fallback — is exercised.
        for q in &a.queries {
            for c in 0..q.column_count() {
                let tokens = q.column_token_set(c);
                assert!(!tokens.is_empty());
                assert!(
                    tokens.iter().all(|tok| a.kb.knows(tok)),
                    "query column {c} of {} holds unknown tokens",
                    q.name()
                );
            }
        }
    }

    #[test]
    fn santos_workload_degenerate_specs_are_clamped() {
        let trace = SantosWorkload {
            tables: 0,
            types: 0,
            cols_per_table: 5,
            queries: 1,
            ..SantosWorkload::default()
        }
        .generate();
        assert_eq!(trace.tables.len(), 1);
        assert_eq!(trace.queries.len(), 1);
        // cols clamp to the (clamped) type count.
        assert_eq!(trace.tables[0].column_count(), 1);
    }

    #[test]
    fn serving_trace_is_deterministic_with_exact_read_share() {
        let spec = ServingWorkload {
            tables: 40,
            query_pool: 8,
            ops: 200,
            read_ratio: 0.8,
            ..ServingWorkload::default()
        };
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a.initial.len(), 40);
        assert_eq!(a.pool.len(), 8);
        assert_eq!(a.ops.len(), 200);
        assert_eq!(a.query_count(), 160, "read share is exact, not expected");
        assert_eq!(a.query_count(), b.query_count());
        for (x, y) in a.ops.iter().zip(&b.ops) {
            match (x, y) {
                (ServingOp::Query(i), ServingOp::Query(j)) => assert_eq!(i, j),
                (ServingOp::Mutate(_), ServingOp::Mutate(_)) => {}
                _ => panic!("traces diverge"),
            }
        }
    }

    #[test]
    fn serving_trace_mutations_replay_in_order_and_tolerantly() {
        let trace = ServingWorkload {
            tables: 24,
            ops: 120,
            read_ratio: 0.5,
            ..ServingWorkload::default()
        }
        .generate();
        // Strict in-order replay is valid (ChurnOp::apply panics if not).
        let mut lake = DataLake::new();
        for t in &trace.initial {
            lake.add(t.clone()).unwrap();
        }
        for op in &trace.ops {
            if let ServingOp::Mutate(m) = op {
                m.apply(&mut lake);
            }
        }
        // Tolerant replay of mutations in *reverse* order must not panic.
        let mut lake = DataLake::new();
        for t in &trace.initial {
            lake.add(t.clone()).unwrap();
        }
        for op in trace.ops.iter().rev() {
            op.apply_tolerant(&mut lake);
        }
        // Query ops always index into the pool.
        for op in &trace.ops {
            if let ServingOp::Query(i) = op {
                assert!(*i < trace.pool.len());
            }
        }
    }

    #[test]
    fn serving_zipf_skews_queries_toward_low_ranks() {
        let trace = ServingWorkload {
            query_pool: 16,
            ops: 1_000,
            read_ratio: 1.0,
            zipf_s: 1.2,
            ..ServingWorkload::default()
        }
        .generate();
        let mut counts = vec![0usize; 16];
        for op in &trace.ops {
            if let ServingOp::Query(i) = op {
                counts[*i] += 1;
            }
        }
        let head: usize = counts[..4].iter().sum();
        assert!(head > 500, "zipf(1.2) head should dominate: {counts:?}");
        assert!(counts[0] > counts[8], "rank 0 beats mid-tail: {counts:?}");
        // Uniform (s = 0) spreads out.
        let uniform = ServingWorkload {
            query_pool: 16,
            ops: 1_000,
            read_ratio: 1.0,
            zipf_s: 0.0,
            ..ServingWorkload::default()
        }
        .generate();
        let mut ucounts = vec![0usize; 16];
        for op in &uniform.ops {
            if let ServingOp::Query(i) = op {
                ucounts[*i] += 1;
            }
        }
        let uhead: usize = ucounts[..4].iter().sum();
        assert!(uhead < 400, "uniform head should not dominate: {ucounts:?}");
    }

    #[test]
    fn er_workload_labels_align_with_rows() {
        let (t, labels) = ErWorkload::default().generate();
        assert_eq!(t.row_count(), labels.len());
        assert_eq!(t.row_count(), 150);
        // Each entity has its mentions_per_entity rows.
        assert_eq!(labels.iter().filter(|&&l| l == 0).count(), 3);
    }

    #[test]
    fn er_entities_are_lexically_distinct() {
        use dialite_text::levenshtein_sim;
        let ents = er_entities(20, 3);
        for (i, a) in ents.iter().enumerate() {
            for b in ents.iter().skip(i + 1) {
                assert!(
                    levenshtein_sim(&a.name, &b.name) < 0.8,
                    "{} too close to {}",
                    a.name,
                    b.name
                );
                assert_ne!(a.code, b.code);
            }
        }
    }

    #[test]
    fn er_workload_dirt_stays_close_to_its_entity() {
        use dialite_text::levenshtein_sim;
        let (t, labels) = ErWorkload {
            entities: 5,
            mentions_per_entity: 3,
            null_rate: 0.0,
            seed: 2,
        }
        .generate();
        // Mentions of the same entity have highly similar names.
        for e in 0..5 {
            let names: Vec<&str> = t
                .rows()
                .zip(&labels)
                .filter(|(_, &l)| l == e)
                .filter_map(|(r, _)| r[0].as_text())
                .collect();
            for pair in names.windows(2) {
                assert!(
                    levenshtein_sim(pair[0], pair[1]) > 0.8,
                    "{} vs {}",
                    pair[0],
                    pair[1]
                );
            }
        }
    }

    #[test]
    fn streamed_table_is_a_pure_function_of_spec_and_index() {
        let spec = StreamedLakeWorkload {
            tables: 64,
            ..StreamedLakeWorkload::default()
        };
        // Re-generating any table in isolation matches the stream.
        let streamed: Vec<Table> = spec.stream().collect();
        for i in [0usize, 7, 63] {
            assert_eq!(spec.table(i), streamed[i]);
        }
        assert_eq!(spec.table(7), spec.table(7));
        assert_ne!(
            spec.table(7),
            spec.table(8),
            "indices seed distinct streams"
        );
        assert_eq!(streamed.len(), 64);
    }

    #[test]
    fn streamed_lake_slots_follow_stream_order() {
        let spec = StreamedLakeWorkload {
            tables: 20,
            rows_per_table: 3,
            vocab: 200,
            queries: 4,
            query_rows: 2,
            seed: 9,
        };
        let lake = spec.lake();
        assert_eq!(lake.len(), 20);
        for (i, t) in spec.stream().enumerate() {
            assert_eq!(
                lake.get(t.name()).expect("streamed table is live").as_ref(),
                &t,
                "slot {i}"
            );
        }
    }

    #[test]
    fn streamed_queries_are_subsets_of_their_source_tables() {
        let spec = StreamedLakeWorkload {
            tables: 40,
            rows_per_table: 6,
            vocab: 300,
            queries: 4,
            query_rows: 3,
            seed: 5,
        };
        let queries = spec.queries();
        assert_eq!(queries.len(), 4);
        let stride = 40 / 4;
        for (q, query) in queries.iter().enumerate() {
            let source = spec.table(q * stride);
            let keys: std::collections::HashSet<String> = source
                .rows()
                .filter_map(|r| r[0].as_text().map(str::to_string))
                .collect();
            assert!(query.row_count() >= 1 && query.row_count() <= 3);
            for row in query.rows() {
                let k = row[0].as_text().expect("text key");
                assert!(keys.contains(k), "query key {k} not in source table");
            }
        }
        assert_eq!(queries, spec.queries(), "query set is deterministic");
    }

    /// Same spec + same seed → identical lakes and queries, table for
    /// table and value for value. The equality-gated benches and the
    /// cost/shard oracles all compare engine output across independently
    /// generated copies of a workload; a nondeterministic generator would
    /// let those gates diverge silently across hosts or reruns.
    #[test]
    fn topk_workload_same_seed_generates_identical_traces() {
        let spec = TopKWorkload {
            tables: 30,
            hub_tables: 3,
            hub_rows: 48,
            tail_rows: 4,
            vocab: 600,
            queries: 5,
            query_rows: 24,
            seed: 1234,
        };
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a.tables, b.tables, "lake tables must be reproducible");
        assert_eq!(a.queries, b.queries, "query tables must be reproducible");
        let other = TopKWorkload { seed: 1235, ..spec }.generate();
        assert_ne!(a.tables, other.tables, "the seed must actually matter");
    }

    #[test]
    fn santos_workload_same_seed_generates_identical_traces() {
        let spec = SantosWorkload {
            tables: 24,
            queries: 4,
            ..SantosWorkload::default()
        };
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a.tables, b.tables, "lake tables must be reproducible");
        assert_eq!(a.queries, b.queries, "query tables must be reproducible");
        assert_eq!(
            a.kb.stats(),
            b.kb.stats(),
            "the synthesized KB must be reproducible"
        );
        let other = SantosWorkload {
            seed: spec.seed + 1,
            ..spec
        }
        .generate();
        assert_ne!(a.tables, other.tables, "the seed must actually matter");
    }

    #[test]
    fn streamed_workload_same_seed_generates_identical_tables_and_queries() {
        let spec = StreamedLakeWorkload {
            tables: 50,
            rows_per_table: 5,
            vocab: 400,
            queries: 4,
            query_rows: 3,
            seed: 99,
        };
        for i in [0usize, 7, 49] {
            assert_eq!(
                spec.table(i),
                spec.table(i),
                "streamed table {i} must be a pure function of (spec, i)"
            );
        }
        let a: Vec<Table> = spec.stream().collect();
        let b: Vec<Table> = spec.stream().collect();
        assert_eq!(a, b, "streamed lake must be reproducible");
        assert_eq!(spec.queries(), spec.queries());
        let other = StreamedLakeWorkload { seed: 100, ..spec };
        assert_ne!(
            spec.table(0),
            other.table(0),
            "the seed must actually matter"
        );
    }

    fn small_hetero() -> HeterogeneousLakeWorkload {
        HeterogeneousLakeWorkload {
            tables: 120,
            clusters: 6,
            cluster_headers: 8,
            max_cols: 4,
            max_rows: 64,
            value_vocab: 200,
            queries: 6,
            query_rows: 4,
            seed: 83,
            ..HeterogeneousLakeWorkload::default()
        }
    }

    #[test]
    fn hetero_table_is_a_pure_function_of_spec_and_index() {
        let spec = small_hetero();
        for i in [0usize, 17, 119] {
            assert_eq!(
                spec.table(i),
                spec.table(i),
                "hetero table {i} must be a pure function of (spec, i)"
            );
        }
        let a: Vec<Table> = spec.stream().collect();
        let b: Vec<Table> = spec.stream().collect();
        assert_eq!(a, b, "hetero lake must be reproducible");
        assert_eq!(spec.queries(), spec.queries());
        assert_eq!(spec.header_queries(), spec.header_queries());
        let other = HeterogeneousLakeWorkload {
            seed: 84,
            ..spec.clone()
        };
        assert_ne!(
            spec.table(0),
            other.table(0),
            "the seed must actually matter"
        );
    }

    #[test]
    fn hetero_sizes_are_zipf_skewed_with_a_long_tail() {
        let spec = small_hetero();
        let sizes: Vec<usize> = spec.stream().map(|t| t.row_count()).collect();
        let floor = sizes.iter().filter(|&&n| n == 2).count();
        let head = sizes.iter().filter(|&&n| n == spec.max_rows).count();
        assert!(
            floor * 3 > sizes.len() && floor > head,
            "the 2-row floor should be the modal size class, got {floor}/{} (head {head})",
            sizes.len()
        );
        let max = *sizes.iter().max().unwrap();
        assert!(
            max >= 16,
            "the head of the size distribution should be much larger than the floor, got {max}"
        );
    }

    #[test]
    fn hetero_clusters_share_headers_and_cluster_of_matches_the_table() {
        let spec = small_hetero();
        for i in 0..spec.tables {
            let t = spec.table(i);
            let cluster = spec.cluster_of(i);
            let anchor = &t.schema().column(0).name;
            assert!(
                anchor.starts_with(&format!("h{cluster}x")),
                "table {i}: anchor header {anchor:?} must come from cluster {cluster}"
            );
        }
        // Popular clusters are shared by many tables — header vocab overlaps.
        let head = (0..spec.tables)
            .filter(|&i| spec.cluster_of(i) == 0)
            .count();
        assert!(
            head >= spec.tables / 4,
            "the Zipf head cluster should dominate, got {head}/{}",
            spec.tables
        );
    }

    #[test]
    fn hetero_dirt_materializes_nulls_and_dirty_cells() {
        let spec = HeterogeneousLakeWorkload {
            tables: 60,
            null_rate: 0.3,
            dirty_rate: 0.3,
            ..small_hetero()
        };
        let mut nulls = 0usize;
        let mut dirty = 0usize;
        let mut anchor_nulls = 0usize;
        for t in spec.stream() {
            for row in t.rows() {
                if row[0].is_null() {
                    anchor_nulls += 1;
                }
                for v in row {
                    match v {
                        Value::Text(s) if s.contains("zz") => dirty += 1,
                        v if v.is_null() => nulls += 1,
                        _ => {}
                    }
                }
            }
        }
        assert!(nulls > 0, "null cells should materialize");
        assert!(dirty > 0, "dirty cells should materialize");
        assert_eq!(anchor_nulls, 0, "the anchor column must stay clean");
    }

    #[test]
    fn hetero_serving_trace_is_deterministic_and_replays_in_order() {
        let spec = HeterogeneousLakeWorkload {
            tables: 30,
            ..small_hetero()
        };
        let (pool_a, ops_a) = spec.serving_ops(80, 0.7);
        let (pool_b, ops_b) = spec.serving_ops(80, 0.7);
        assert_eq!(pool_a, pool_b);
        assert_eq!(ops_a, ops_b, "serving trace must be deterministic");
        let reads = ops_a
            .iter()
            .filter(|op| matches!(op, ServingOp::Query(_)))
            .count();
        assert_eq!(reads, 56, "exact read share");
        for op in &ops_a {
            if let ServingOp::Query(i) = op {
                assert!(*i < pool_a.len());
            }
        }
        // Strict in-order replay must be valid against the streamed lake.
        let mut lake = spec.lake();
        for op in &ops_a {
            if let ServingOp::Mutate(m) = op {
                assert!(m.apply(&mut lake), "trace is valid in order");
            }
        }
    }
}
