//! # dialite-datagen
//!
//! Synthetic data for the reproduction's tests and benchmarks:
//!
//! * [`TableSynth`] — the GPT-3 substitute of paper Fig. 5: a seeded,
//!   template-grammar query-table generator ("generate a query table about
//!   COVID-19 cases with 5 columns and 5 rows"). Deterministic by seed, so
//!   experiments are reproducible (DESIGN.md §1 documents the substitution
//!   for the closed OpenAI API).
//! * [`SyntheticLake`] — a benchmark data lake with **ground truth**: base
//!   *universe* relations are sliced into overlapping vertical/horizontal
//!   fragments with injected nulls, dirtied values and (optionally)
//!   scrambled headers. The truth records which fragments are unionable /
//!   joinable with which, the integration class of every column, and a
//!   synthetic KB typed over the universe domains — enabling
//!   precision/recall evaluation of discovery (E7) and alignment (E8).
//! * [`workloads`] — parameterized workloads for the FD scaling bench (E6),
//!   the ER-quality experiment (E10), the lake-churn trace
//!   ([`workloads::ChurnWorkload`]) behind the incremental-discovery bench
//!   and oracle tests, and the corpus-scale streamed lakes: the uniform
//!   [`workloads::StreamedLakeWorkload`] grid and the open-data-shaped
//!   [`HeterogeneousLakeWorkload`] (Zipf table sizes, dirty/sparse cells,
//!   overlapping topical clusters with shared header vocabulary).
//! * [`metrics`] — precision/recall@k and pair-based alignment scoring.

pub mod lake;
pub mod metrics;
pub mod synth;
pub mod workloads;

pub use lake::{GroundTruth, LakeSpec, SyntheticLake};
pub use synth::TableSynth;
pub use workloads::{
    ChurnOp, ChurnTrace, ChurnWorkload, HeterogeneousLakeWorkload, SantosTrace, SantosWorkload,
    ServingOp, ServingTrace, ServingWorkload,
};
