//! **Serving experiment** — discovery-as-a-service under concurrent load:
//! sustained qps + tail latency of [`dialite_discovery::DiscoveryService`]
//! at N ∈ {1, 8, 32} client threads replaying a zipfian read/churn trace
//! over a skewed 1k-table lake (the `BENCH_serving.json` trajectory).
//!
//! ```text
//! cargo run --release --bin exp_serving -p dialite-bench            # full
//! cargo run --release --bin exp_serving -p dialite-bench -- --smoke # CI
//! ```
//!
//! `--smoke` runs a small fixed trace at N=8 with the linearization check
//! enabled (every concurrent response byte-identical to a single-threaded
//! replay at its stamped version) and asserts zero `Busy` rejections at
//! the default generous admission capacity — the CI gate. The full run
//! measures the three client counts and *appends* one point per client
//! count to the `BENCH_serving.json` trajectory
//! ([`dialite_bench::record`]) — history accumulates, it is never
//! overwritten.

use std::path::Path;
use std::sync::Arc;

use dialite_bench::load::{run_load, service_over, LoadConfig, LoadReport};
use dialite_bench::{record, row, section};
use dialite_datagen::workloads::ServingWorkload;
use dialite_discovery::{
    DiscoveryBudget, LakeIndexConfig, LshEnsembleConfig, SantosConfig, ServingConfig,
};
use dialite_kb::curated::covid_kb;

/// Sketch-free index config: discovery output is a pure function of lake
/// state, which the linearization check requires (same config as the
/// incremental-oracle tests).
fn exact_config() -> LakeIndexConfig {
    LakeIndexConfig {
        santos: SantosConfig::default(),
        lshe: LshEnsembleConfig {
            num_perm: 64,
            num_partitions: 4,
            exact_fallback_below: usize::MAX,
            ..LshEnsembleConfig::default()
        },
        metadata: None,
    }
}

fn header() -> String {
    row(&[
        "clients".into(),
        "qps".into(),
        "p50".into(),
        "p90".into(),
        "p99".into(),
        "p999".into(),
        "busy".into(),
    ])
}

fn smoke() {
    section("Serving smoke: N=8, fixed trace, linearization check ON");
    let trace = ServingWorkload {
        tables: 64,
        hub_tables: 4,
        hub_rows: 96,
        tail_rows: 8,
        vocab: 2_000,
        query_pool: 8,
        query_rows: 32,
        ops: 160,
        read_ratio: 0.85,
        zipf_s: 1.0,
        seed: 61,
    }
    .generate();
    let service = service_over(
        &trace,
        Arc::new(covid_kb()),
        exact_config(),
        ServingConfig::default(),
    );
    let report = run_load(
        &service,
        &trace,
        &LoadConfig {
            clients: 8,
            warmup_queries: 16,
            k: 10,
            budget: DiscoveryBudget::unlimited(),
            verify: true,
        },
    );
    println!("{}", header());
    println!("{}", row(&report.row()));
    let verified = report.verified.expect("verification was on");
    println!(
        "linearization: {verified} concurrent responses byte-identical to single-threaded replay"
    );
    assert_eq!(
        report.busy, 0,
        "default admission capacity must not reject the smoke trace"
    );
    assert_eq!(
        verified as u64, report.queries,
        "every answered query must be verified"
    );
    assert!(verified > 0, "smoke trace must answer queries");
    println!("serving smoke: OK");
}

fn full() -> Vec<LoadReport> {
    section("Serving load: skewed 1k-table lake, 90:10 read:write, zipf(1.0)");
    let trace = ServingWorkload {
        tables: 1_000,
        hub_tables: 4,
        hub_rows: 256,
        tail_rows: 12,
        vocab: 40_000,
        query_pool: 32,
        query_rows: 128,
        ops: 4_096,
        read_ratio: 0.9,
        zipf_s: 1.0,
        seed: 67,
    }
    .generate();
    println!(
        "lake: {} tables | trace: {} ops ({} queries) | pool: {} queries",
        trace.initial.len(),
        trace.ops.len(),
        trace.query_count(),
        trace.pool.len(),
    );
    println!("{}", header());
    let mut reports = Vec::new();
    for clients in [1usize, 8, 32] {
        let service = service_over(
            &trace,
            Arc::new(covid_kb()),
            LakeIndexConfig::default(),
            ServingConfig::default(),
        );
        let report = run_load(
            &service,
            &trace,
            &LoadConfig {
                clients,
                warmup_queries: 64,
                k: 10,
                budget: DiscoveryBudget::default(),
                verify: false,
            },
        );
        println!("{}", row(&report.row()));
        assert_eq!(
            report.busy, 0,
            "default admission capacity must not reject at {clients} clients"
        );
        reports.push(report);
    }
    reports
}

/// Append one `{bench, host_cpus, points[]}` point per client count —
/// the trajectory keeps every historical run.
fn append_bench_json(reports: &[LoadReport]) {
    let us = |v: Option<f64>| match v {
        Some(us) => format!("{us:.1}"),
        None => "null".into(),
    };
    // The bin's cwd is the invoker's; anchor on the crate manifest so the
    // trajectory always lands at the repo root.
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serving.json");
    for r in reports {
        let point = format!(
            "{{ \"clients\": {}, \"qps\": {:.1}, \"queries\": {}, \"mutations\": {}, \
             \"busy\": {}, \"p50_us\": {}, \"p90_us\": {}, \"p99_us\": {}, \"p999_us\": {}, \
             \"mean_us\": {:.1} }}",
            r.clients,
            r.qps,
            r.queries,
            r.mutations,
            r.busy,
            us(r.latency.p50_us),
            us(r.latency.p90_us),
            us(r.latency.p99_us),
            us(r.latency.p999_us),
            r.latency.mean_us,
        );
        record::append_point(&path, "serving", &point).expect("append BENCH_serving.json");
    }
    println!(
        "\nappended {} point(s) to {}",
        reports.len(),
        path.display()
    );
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let reports = full();
    append_bench_json(&reports);
}
