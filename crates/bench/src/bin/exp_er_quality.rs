//! **Experiment E10** — downstream ER quality over FD versus outer-join
//! integration (the ALITE-paper claim the demo showcases): resolve a dirty
//! mention workload, measure pairwise F1 against ground truth, and compare
//! ER over the two integration semantics on fragment sets.
//!
//! ```text
//! cargo run --release --bin exp_er_quality -p dialite-bench
//! ```

use dialite_align::Alignment;
use dialite_analyze::er::pairwise_f1;
use dialite_analyze::{EntityResolver, ErConfig, Gazetteer};
use dialite_bench::{f3, row, section, timed};
use dialite_datagen::workloads::ErWorkload;
use dialite_integrate::{AliteFd, Integrator, OuterJoinIntegrator};
use dialite_table::{Table, Value};

fn main() {
    section("E10.1 — ER quality on the dirty-mention workload");
    println!(
        "{}",
        row(&[
            "nulls".into(),
            "P".into(),
            "R".into(),
            "F1".into(),
            "ms".into(),
        ])
    );
    for null_pct in [0usize, 20, 40, 60] {
        let (table, labels) = ErWorkload {
            entities: 60,
            mentions_per_entity: 3,
            null_rate: null_pct as f64 / 100.0,
            seed: 5,
        }
        .generate();
        let er = EntityResolver::new(
            ErConfig {
                min_agreements: 2,
                ..ErConfig::default()
            },
            Gazetteer::new(),
        );
        let (result, ms) = timed(|| er.resolve(&table));
        let (p, r, f1) = pairwise_f1(&result.clusters, &labels);
        println!(
            "{}",
            row(&[format!("{null_pct}%"), f3(p), f3(r), f3(f1), f3(ms)])
        );
    }
    println!("shape: recall degrades as nulls erase the second agreement — FD's merges restore it (E10.2).");

    section("E10.2 — ER over FD vs outer join on the Fig. 7 triangle at scale");
    // Each entity is split across three tables, exactly the shape of paper
    // Fig. 7: A(name, code) with 40% of codes nulled out, B(code, city),
    // C(name, city). FD reconnects the null-code entities through C; the
    // left-to-right outer join cannot (null-rejecting equality), leaving
    // three fragments per damaged entity.
    use dialite_datagen::workloads::er_entities;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let entities = er_entities(40, 9);
    let mut rng = StdRng::seed_from_u64(99);
    let a = Table::from_rows(
        "A",
        &["name", "code"],
        entities
            .iter()
            .map(|e| {
                let code = if rng.gen_bool(0.4) {
                    Value::null_missing()
                } else {
                    Value::Text(e.code.clone())
                };
                vec![Value::Text(e.name.clone()), code]
            })
            .collect(),
    )
    .unwrap();
    let b = Table::from_rows(
        "B",
        &["code", "city"],
        entities
            .iter()
            .map(|e| vec![Value::Text(e.code.clone()), Value::Text(e.location.clone())])
            .collect(),
    )
    .unwrap();
    let c = Table::from_rows(
        "C",
        &["name", "city"],
        entities
            .iter()
            .map(|e| vec![Value::Text(e.name.clone()), Value::Text(e.location.clone())])
            .collect(),
    )
    .unwrap();
    let tables = vec![&a, &b, &c];
    let al = Alignment::by_headers(&tables);

    let er = EntityResolver::new(
        ErConfig {
            min_agreements: 2,
            ..ErConfig::default()
        },
        Gazetteer::new(),
    );

    println!(
        "{}",
        row(&[
            "integration".into(),
            "rows".into(),
            "complete".into(),
            "entities".into(),
            "pair F1".into(),
        ])
    );
    for (name, engine) in [
        ("fd", Box::new(AliteFd::default()) as Box<dyn Integrator>),
        ("outer-join", Box::new(OuterJoinIntegrator)),
    ] {
        let out = engine.integrate(&tables, &al).unwrap();
        let resolved = er.resolve(out.table());
        // Ground truth per *output row*: the entity of any witness tuple
        // (all three fragment tables are row-aligned with the roster).
        let row_truth: Vec<usize> = out
            .provenances()
            .iter()
            .map(|tids| tids.iter().next().unwrap().row as usize)
            .collect();
        let (_, _, f1) = pairwise_f1(&resolved.clusters, &row_truth);
        let complete = out
            .table()
            .rows()
            .filter(|r| r.iter().all(|v| !v.is_null()))
            .count();
        println!(
            "{}",
            row(&[
                name.into(),
                out.table().row_count().to_string(),
                complete.to_string(),
                resolved.entity_count().to_string(),
                f3(f1),
            ])
        );
    }
    println!(
        "shape: FD yields one complete tuple per entity; outer join leaves the\n\
         null-code entities as three fragments that ER cannot re-associate."
    );
}
