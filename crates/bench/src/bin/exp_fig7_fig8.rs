//! **Experiments E3 + E4** — regenerate paper Fig. 7 (the vaccine
//! integration set) and all four panels of Fig. 8: (a) outer join,
//! (b) full disjunction, (c) ER over outer join, (d) ER over FD.
//!
//! ```text
//! cargo run --release --bin exp_fig7_fig8 -p dialite-bench
//! ```

use dialite_align::Alignment;
use dialite_analyze::EntityResolver;
use dialite_bench::section;
use dialite_core::demo;
use dialite_integrate::{AliteFd, Integrator, OuterJoinIntegrator};
use dialite_table::{table, Table, Value};

fn main() {
    let (t4, t5, t6) = demo::fig7_tables();
    section("Fig. 7 — integration set");
    println!("{t4}\n{t5}\n{t6}");
    let tables = vec![&t4, &t5, &t6];
    let al = Alignment::by_headers(&tables);

    section("Fig. 8(a) — T4 ⟗ T5 ⟗ T6 (outer join)");
    let oj = OuterJoinIntegrator.integrate(&tables, &al).unwrap();
    println!("{}", oj.display_with_provenance(Some(&["T4", "T5", "T6"])));
    let expected_a = table! {
        "a"; ["Vaccine", "Approver", "Country"];
        ["Pfizer", "FDA", "United States"],
        ["JnJ", Value::null_missing(), Value::null_produced()],
        [Value::null_produced(), Value::null_missing(), "USA"],
        ["J&J", Value::null_produced(), "United States"],
        ["JnJ", Value::null_produced(), "USA"],
    };
    check("Fig. 8(a)", oj.table(), &expected_a);

    section("Fig. 8(b) — FD(T4, T5, T6) (ALITE)");
    let fd = AliteFd::default().integrate(&tables, &al).unwrap();
    println!("{}", fd.display_with_provenance(Some(&["T4", "T5", "T6"])));
    let expected_b = table! {
        "b"; ["Vaccine", "Approver", "Country"];
        ["Pfizer", "FDA", "United States"],
        ["JnJ", Value::null_produced(), "USA"],
        ["J&J", "FDA", "United States"],
    };
    check("Fig. 8(b)", fd.table(), &expected_b);

    let er = EntityResolver::demo_default();

    section("Fig. 8(c) — ER over the outer-join result");
    let c = er.resolve(oj.table());
    println!("{}", c.table);
    let expected_c = table! {
        "c"; ["Vaccine", "Approver", "Country"];
        ["Pfizer", "FDA", "United States"],
        ["JnJ", Value::null_missing(), Value::null_produced()],
        [Value::null_produced(), Value::null_missing(), "USA"],
        ["J&J", Value::null_produced(), "United States"],
    };
    check("Fig. 8(c)", &c.table, &expected_c);

    section("Fig. 8(d) — ER over the FD result");
    let d = er.resolve(fd.table());
    println!("{}", d.table);
    let expected_d = table! {
        "d"; ["Vaccine", "Approver", "Country"];
        ["Pfizer", "FDA", "United States"],
        ["J&J", "FDA", "United States"],
    };
    check("Fig. 8(d)", &d.table, &expected_d);

    section("Headline contrast");
    println!(
        "outer join derives J&J's approver: NO (paper: NO)\n\
         FD derives J&J's approver:        YES (paper: YES, via f13 = {{t13, t15}})"
    );
}

fn check(label: &str, got: &Table, expected: &Table) {
    let ok = got.same_content(&expected.clone().renamed(got.name()));
    println!("{label} matches paper: {}", if ok { "YES" } else { "NO" });
    assert!(
        ok,
        "{label} must reproduce exactly;\ngot:\n{got}\nexpected:\n{expected}"
    );
}
