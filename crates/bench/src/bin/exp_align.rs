//! **Experiment E8** — holistic schema matching quality versus baselines
//! (the claim DIALITE inherits from ALITE: its holistic matcher outperforms
//! naive matching), on fragment lakes with scrambled headers and varying
//! null rates.
//!
//! ```text
//! cargo run --release --bin exp_align -p dialite-bench
//! ```

use std::sync::Arc;

use dialite_align::{Alignment, HolisticMatcher, KbAnnotator, MatcherConfig};
use dialite_bench::{f3, row, section, timed};
use dialite_datagen::lake::{LakeSpec, SyntheticLake};
use dialite_datagen::metrics::alignment_pair_f1;
use dialite_table::Table;

fn eval(
    synth: &SyntheticLake,
    universes: usize,
    matcher: Option<&HolisticMatcher>,
) -> (f64, f64, f64, f64) {
    let tables_owned: Vec<Table> = synth.lake.tables().map(|t| t.as_ref().clone()).collect();
    let (mut p, mut r, mut f, mut ms_sum, mut n) = (0.0, 0.0, 0.0, 0.0, 0usize);
    for u in 0..universes {
        let set: Vec<&Table> = tables_owned
            .iter()
            .filter(|t| synth.truth.universe_of[t.name()] == u)
            .collect();
        let (alignment, ms) = timed(|| match matcher {
            None => Alignment::by_headers(&set),
            Some(m) => m.align(&set),
        });
        let (pp, rr, ff) = alignment_pair_f1(&set, &alignment, &synth.truth);
        p += pp;
        r += rr;
        f += ff;
        ms_sum += ms;
        n += 1;
    }
    let n = n as f64;
    (p / n, r / n, f / n, ms_sum / n)
}

fn main() {
    let universes = 5;
    for (title, scramble, null_rate, dirt) in [
        ("E8.1 — clean headers, 5% nulls", false, 0.05, 0.0),
        ("E8.2 — scrambled headers, 5% nulls", true, 0.05, 0.0),
        ("E8.3 — scrambled headers, 30% nulls", true, 0.30, 0.0),
        (
            "E8.4 — scrambled headers, 30% nulls, 40% dirty values",
            true,
            0.30,
            0.40,
        ),
    ] {
        let synth = SyntheticLake::generate(&LakeSpec {
            universes,
            fragments_per_universe: 4,
            rows_per_universe: 60,
            categorical_cols: 3,
            numeric_cols: 1,
            null_rate,
            value_dirt_rate: dirt,
            scramble_headers: scramble,
            seed: 404,
        });
        let kb = Arc::new(synth.truth.kb.clone());

        section(title);
        println!(
            "{}",
            row(&[
                "matcher".into(),
                "P".into(),
                "R".into(),
                "F1".into(),
                "ms".into()
            ])
        );
        let holistic = HolisticMatcher::default();
        let with_kb =
            HolisticMatcher::default().with_annotator(Arc::new(KbAnnotator::new(kb.clone())));
        let fixed_cut = HolisticMatcher::with_threshold(0.45);
        let no_header = HolisticMatcher::new(MatcherConfig {
            header_weight: 0.0,
            ..MatcherConfig::default()
        });
        let configs: Vec<(&str, Option<&HolisticMatcher>)> = vec![
            ("header-equality", None),
            ("holistic", Some(&holistic)),
            ("holistic+kb", Some(&with_kb)),
            ("fixed-cut-0.45", Some(&fixed_cut)),
            ("no-header-signal", Some(&no_header)),
        ];
        for (name, m) in configs {
            let (p, r, f, ms) = eval(&synth, universes, m);
            println!("{}", row(&[name.into(), f3(p), f3(r), f3(f), f3(ms)]));
        }
    }
}
