//! **Experiment E6** — FD engine scaling (the claim DIALITE inherits from
//! ALITE: its FD algorithm is faster than baselines on real lake tables).
//!
//! Sweeps the integration-set size, rows per table and null rate on the
//! star-shaped FD workload, timing the reference quadratic engine, ALITE's
//! indexed engine and the parallel engine. The expected *shape*: ALITE ≤
//! naive everywhere, with the gap widening as rows grow; the parallel
//! engine wins on the largest settings.
//!
//! ```text
//! cargo run --release --bin exp_fd_scaling -p dialite-bench
//! ```

use dialite_align::Alignment;
use dialite_bench::{f3, row, section, timed};
use dialite_datagen::workloads::FdWorkload;
use dialite_integrate::{AliteFd, Integrator, NaiveFd, OuterJoinIntegrator, ParallelFd};
use dialite_table::Table;

fn run_engines(tables: &[Table]) -> Vec<(String, f64, usize)> {
    let refs: Vec<&Table> = tables.iter().collect();
    let al = Alignment::by_headers(&refs);
    let engines: Vec<Box<dyn Integrator>> = vec![
        Box::new(NaiveFd::default()),
        Box::new(AliteFd::default()),
        Box::new(ParallelFd::default()),
        Box::new(OuterJoinIntegrator),
    ];
    engines
        .into_iter()
        .map(|e| {
            let (out, ms) = timed(|| e.integrate(&refs, &al).expect("within budget"));
            (e.name().to_string(), ms, out.row_count())
        })
        .collect()
}

fn header() {
    println!(
        "{}",
        row(&[
            "setting".into(),
            "naive ms".into(),
            "alite ms".into(),
            "parallel ms".into(),
            "outer-join ms".into(),
            "fd rows".into(),
        ])
    );
}

fn report(setting: &str, results: &[(String, f64, usize)]) {
    let ms = |name: &str| {
        results
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, m, _)| *m)
            .unwrap_or(f64::NAN)
    };
    let fd_rows = results
        .iter()
        .find(|(n, _, _)| n == "alite-fd")
        .map(|(_, _, r)| *r)
        .unwrap_or(0);
    println!(
        "{}",
        row(&[
            setting.into(),
            f3(ms("naive-fd")),
            f3(ms("alite-fd")),
            f3(ms("parallel-fd")),
            f3(ms("outer-join")),
            fd_rows.to_string(),
        ])
    );
}

fn main() {
    section("E6.1 — scaling the number of tables (rows = 150, nulls = 0.1)");
    header();
    for tables in [2usize, 4, 6, 8, 10] {
        let w = FdWorkload {
            tables,
            rows: 150,
            key_domain: 300,
            null_rate: 0.1,
            seed: 11,
        };
        report(&format!("{tables} tables"), &run_engines(&w.generate()));
    }

    section("E6.2 — scaling rows per table (4 tables, nulls = 0.1)");
    header();
    for rows in [50usize, 100, 200, 400, 800] {
        let w = FdWorkload {
            tables: 4,
            rows,
            key_domain: rows * 2,
            null_rate: 0.1,
            seed: 12,
        };
        report(&format!("{rows} rows"), &run_engines(&w.generate()));
    }

    section("E6.3 — null-rate sensitivity (4 tables × 200 rows)");
    header();
    for null_pct in [0usize, 10, 30, 50] {
        let w = FdWorkload {
            tables: 4,
            rows: 200,
            key_domain: 400,
            null_rate: null_pct as f64 / 100.0,
            seed: 13,
        };
        report(&format!("{null_pct}% nulls"), &run_engines(&w.generate()));
    }

    section("Shape check");
    let w = FdWorkload {
        tables: 6,
        rows: 400,
        key_domain: 800,
        null_rate: 0.1,
        seed: 14,
    };
    let results = run_engines(&w.generate());
    let ms = |name: &str| {
        results
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, m, _)| *m)
            .unwrap()
    };
    println!(
        "alite faster than naive at 6×400: {} ({:.1} ms vs {:.1} ms)",
        ms("alite-fd") < ms("naive-fd"),
        ms("alite-fd"),
        ms("naive-fd")
    );
}
