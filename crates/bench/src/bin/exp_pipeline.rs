//! **Experiment E5** — the end-to-end pipeline of paper Fig. 1 / §2 on the
//! bundled demo lake: discover (SANTOS-style + LSH Ensemble), align &
//! integrate (ALITE FD vs outer join), analyze.
//!
//! ```text
//! cargo run --release --bin exp_pipeline -p dialite-bench
//! ```

use dialite_analyze::pearson_columns;
use dialite_bench::{section, timed};
use dialite_core::{demo, Pipeline};
use dialite_discovery::TableQuery;

fn main() {
    let lake = demo::covid_lake();
    section("Data lake");
    for t in lake.tables() {
        println!(
            "  {:10} {} rows × {} cols",
            t.name(),
            t.row_count(),
            t.column_count()
        );
    }

    let (pipeline, build_ms) = timed(|| Pipeline::demo_default(&lake));
    println!("\nindex build: {build_ms:.1} ms");

    let query = TableQuery::with_column(demo::fig2_query(), 1);
    let (run, run_ms) = timed(|| pipeline.run(&lake, &query).expect("pipeline"));
    section("Per-stage outputs");
    println!("{}", run.report());
    println!("pipeline run: {run_ms:.1} ms");

    section("Analysis over the integrated table");
    let out = run.integrated.table();
    let rate = out.column_index("Vaccination Rate").unwrap();
    let death = out.column_index("Death Rate").unwrap();
    println!(
        "corr(vaccination, death rate) = {:.3} (paper: 0.16)",
        pearson_columns(out, rate, death).unwrap()
    );

    section("Discovery telemetry");
    let telemetry = pipeline
        .telemetry()
        .expect("demo pipeline maintains an index");
    println!("{}", telemetry.summary());
    assert_eq!(telemetry.topk.queries, 1, "one budgeted run recorded");
    assert_eq!(telemetry.santos.queries, 1);

    section("Verification");
    let ok = out.same_content(&demo::fig3_expected());
    println!(
        "end-to-end output equals paper Fig. 3: {}",
        if ok { "YES" } else { "NO" }
    );
    assert!(ok);
}
