//! **Experiment E7** — discovery quality and speed on the synthetic lake
//! with ground truth: precision/recall@k for the SANTOS-style, LSH Ensemble
//! and exact-overlap engines on unionable and joinable queries, plus index
//! build and query latency versus lake size.
//!
//! ```text
//! cargo run --release --bin exp_discovery -p dialite-bench
//! ```

use std::collections::HashSet;
use std::sync::Arc;

use dialite_bench::{f3, row, section, timed};
use dialite_datagen::lake::{LakeSpec, SyntheticLake};
use dialite_datagen::metrics::precision_recall_at_k;
use dialite_discovery::{
    Discovery, ExactOverlapDiscovery, LshEnsembleConfig, LshEnsembleDiscovery, SantosConfig,
    SantosDiscovery, TableQuery,
};

fn spec(universes: usize, fragments: usize) -> LakeSpec {
    LakeSpec {
        universes,
        fragments_per_universe: fragments,
        rows_per_universe: 80,
        categorical_cols: 3,
        numeric_cols: 1,
        null_rate: 0.05,
        value_dirt_rate: 0.0,
        scramble_headers: true,
        seed: 2023,
    }
}

fn evaluate(
    synth: &SyntheticLake,
    engine: &dyn Discovery,
    k: usize,
    joinable_only: bool,
) -> (f64, f64, f64) {
    let (mut p_sum, mut r_sum, mut q_ms, mut n) = (0.0, 0.0, 0.0, 0usize);
    for table in synth.lake.tables() {
        let truth: HashSet<String> = if joinable_only {
            synth
                .truth
                .joinable
                .get(table.name())
                .cloned()
                .unwrap_or_default()
        } else {
            synth.truth.related(table.name())
        };
        if truth.is_empty() {
            continue;
        }
        // Joinable queries mark the key column (original column 0).
        let query = if joinable_only {
            let key = (0..table.column_count())
                .find(|&c| synth.truth.column_class[&(table.name().to_string(), c)].1 == 0);
            match key {
                Some(c) => TableQuery::with_column(table.as_ref().clone(), c),
                None => continue,
            }
        } else {
            TableQuery::new(table.as_ref().clone())
        };
        let (hits, ms) = timed(|| engine.discover(&query, k));
        let ranked: Vec<String> = hits.into_iter().map(|d| d.table).collect();
        let (p, r) = precision_recall_at_k(&ranked, &truth, k);
        p_sum += p;
        r_sum += r;
        q_ms += ms;
        n += 1;
    }
    let n = n.max(1) as f64;
    (p_sum / n, r_sum / n, q_ms / n)
}

fn main() {
    let synth = SyntheticLake::generate(&spec(6, 5));
    let kb = Arc::new(synth.truth.kb.clone());
    let k = 8;

    section("E7.1 — index build time");
    let (santos, santos_ms) =
        timed(|| SantosDiscovery::build(&synth.lake, kb.clone(), SantosConfig::default()));
    let (lshe, lshe_ms) =
        timed(|| LshEnsembleDiscovery::build(&synth.lake, LshEnsembleConfig::default()));
    let (overlap, overlap_ms) = timed(|| ExactOverlapDiscovery::build(&synth.lake, true));
    println!("{}", row(&["engine".into(), "build ms".into()]));
    println!("{}", row(&["santos".into(), f3(santos_ms)]));
    println!("{}", row(&["lsh-ensemble".into(), f3(lshe_ms)]));
    println!("{}", row(&["exact-overlap".into(), f3(overlap_ms)]));

    section("E7.2 — related-table search (all relatives), k = 8");
    println!(
        "{}",
        row(&[
            "engine".into(),
            "P@8".into(),
            "R@8".into(),
            "query ms".into()
        ])
    );
    for (name, engine) in [
        ("santos", &santos as &dyn Discovery),
        ("lsh-ensemble", &lshe as &dyn Discovery),
        ("exact-overlap", &overlap as &dyn Discovery),
    ] {
        let (p, r, ms) = evaluate(&synth, engine, k, false);
        println!("{}", row(&[name.into(), f3(p), f3(r), f3(ms)]));
    }

    section("E7.3 — joinable search (key column marked), k = 8");
    println!(
        "{}",
        row(&[
            "engine".into(),
            "P@8".into(),
            "R@8".into(),
            "query ms".into()
        ])
    );
    for (name, engine) in [
        ("lsh-ensemble", &lshe as &dyn Discovery),
        ("exact-overlap", &overlap as &dyn Discovery),
    ] {
        let (p, r, ms) = evaluate(&synth, engine, k, true);
        println!("{}", row(&[name.into(), f3(p), f3(r), f3(ms)]));
    }

    section("E7.4 — query latency vs lake size (exact-overlap vs lsh-ensemble)");
    println!(
        "{}",
        row(&[
            "fragments".into(),
            "lshe build ms".into(),
            "lshe q ms".into(),
            "exact q ms".into(),
        ])
    );
    for universes in [4usize, 8, 16] {
        let synth = SyntheticLake::generate(&spec(universes, 6));
        let (lshe, b_ms) =
            timed(|| LshEnsembleDiscovery::build(&synth.lake, LshEnsembleConfig::default()));
        let overlap = ExactOverlapDiscovery::build(&synth.lake, true);
        let (_, _, lshe_q) = evaluate(&synth, &lshe, k, true);
        let (_, _, ex_q) = evaluate(&synth, &overlap, k, true);
        println!(
            "{}",
            row(&[format!("{}", universes * 6), f3(b_ms), f3(lshe_q), f3(ex_q),])
        );
    }
}
