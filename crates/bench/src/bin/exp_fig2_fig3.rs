//! **Experiment E1** — regenerate paper Fig. 2 (input COVID tables) and
//! Fig. 3 (the integrated table produced by ALITE), including provenance
//! and the missing/produced null distinction.
//!
//! ```text
//! cargo run --release --bin exp_fig2_fig3 -p dialite-bench
//! ```

use dialite_align::Alignment;
use dialite_bench::section;
use dialite_core::demo;
use dialite_integrate::{AliteFd, Integrator};

fn main() {
    let t1 = demo::fig2_query();
    let t2 = demo::fig2_unionable();
    let t3 = demo::fig2_joinable();

    section("Fig. 2 — input tables");
    println!("{t1}\n{t2}\n{t3}");

    section("Fig. 3 — FD(T1, T2, T3) computed by ALITE");
    let tables = vec![&t1, &t2, &t3];
    let alignment = Alignment::by_headers(&tables);
    let out = AliteFd::default()
        .integrate(&tables, &alignment)
        .expect("integration");
    println!("{}", out.display_with_provenance(Some(&["t", "t", "t"])));
    println!("{}", out.table());

    section("Verification against the paper");
    let expected = demo::fig3_expected();
    let ok = out.table().same_content(&expected);
    println!(
        "rows: {} (paper: 7)   content matches paper Fig. 3: {}",
        out.table().row_count(),
        if ok { "YES" } else { "NO" }
    );
    assert!(ok, "Fig. 3 must reproduce exactly");
}
