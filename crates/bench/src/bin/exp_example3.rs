//! **Experiment E2** — regenerate paper Example 3: the correlation analysis
//! over the integrated COVID table (vaccination vs. death rates ≈ 0.16,
//! cases vs. vaccination ≈ 0.9) and the extremes query (Boston lowest,
//! Toronto highest vaccination rate).
//!
//! ```text
//! cargo run --release --bin exp_example3 -p dialite-bench
//! ```

use dialite_analyze::{extremes, pearson_columns};
use dialite_bench::{row, section};
use dialite_core::demo;

fn main() {
    let t = demo::fig3_expected();
    section("Input: the integrated table of Fig. 3");
    println!("{t}");

    let rate = t.column_index("Vaccination Rate").unwrap();
    let death = t.column_index("Death Rate").unwrap();
    let cases = t.column_index("Total Cases").unwrap();
    let city = t.column_index("City").unwrap();

    section("Example 3 — extremes");
    let (lo, hi) = extremes(&t, rate).unwrap();
    println!("lowest vaccination rate:  {}", t.row(lo).unwrap()[city]);
    println!("highest vaccination rate: {}", t.row(hi).unwrap()[city]);

    section("Example 3 — correlations (paper vs measured)");
    let r_vd = pearson_columns(&t, rate, death).unwrap();
    let r_cv = pearson_columns(&t, cases, rate).unwrap();
    println!(
        "{}",
        row(&["pair".into(), "paper".into(), "measured".into()])
    );
    println!(
        "{}",
        row(&["vacc↔death".into(), "0.16".into(), format!("{r_vd:.4}")])
    );
    println!(
        "{}",
        row(&["cases↔vacc".into(), "0.90".into(), format!("{r_cv:.4}")])
    );
    assert!((r_vd - 0.16).abs() < 0.005);
    assert!((r_cv - 0.9).abs() < 0.01);
    println!("\nboth correlations match the paper: YES");
}
