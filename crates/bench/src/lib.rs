//! Shared helpers for the experiment binaries and criterion benches.
//!
//! Every table and figure of the DIALITE paper maps to a binary in
//! `src/bin/` (`exp_*`) or a criterion bench in `benches/` — the index
//! lives in `DESIGN.md` §2 and the measured results in `EXPERIMENTS.md`.

use std::time::Instant;

pub mod load;
pub mod record;

/// Run a closure, returning its result and the elapsed milliseconds.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

/// Print a section header in the experiment binaries' uniform style.
pub fn section(title: &str) {
    println!("\n==== {title} ====");
}

/// Render a row of right-aligned cells for result tables.
pub fn row(cells: &[String]) -> String {
    cells
        .iter()
        .map(|c| format!("{c:>14}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Format a float with three decimals (result-table convention).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_measures_something() {
        let (v, ms) = timed(|| (0..1000).sum::<u64>());
        assert_eq!(v, 499_500);
        assert!(ms >= 0.0);
    }

    #[test]
    fn row_aligns() {
        let r = row(&["a".into(), "b".into()]);
        assert!(r.contains("a"));
        assert!(r.len() >= 28);
    }
}
