//! Append-only recorder for the repo's `BENCH_*.json` trajectory files.
//!
//! Every bench trajectory uses one unified shape:
//!
//! ```json
//! {
//!   "bench": "topk",
//!   "host_cpus": 1,
//!   "points": [ { ... }, { ... } ]
//! }
//! ```
//!
//! `points` is append-only history: each `exp_*` binary or criterion
//! bench run *adds* its rows ([`append_point`]) instead of rewriting the
//! file, so older numbers stay visible in the trajectory and a regression
//! cannot silently erase its own baseline. Extra top-level keys
//! (`command`, `notes`, ...) are preserved verbatim; the one structural
//! requirement is that `"points"` is the **last** top-level key, so its
//! closing `]` is the last `]` in the file. There is no serde in this
//! offline workspace — the splice is plain string surgery, like every
//! other JSON producer here.

use std::io;
use std::path::Path;

/// The host's logical CPU count, as recorded in fresh trajectory files —
/// wall-clock numbers are only comparable within one `host_cpus` regime
/// (a 1-CPU bench host cannot show parallel fan-out speedups).
pub fn host_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Append one JSON object to the `points` array of the trajectory file at
/// `path`. A missing file — or one without a `points` array — is created
/// fresh in the unified `{bench, host_cpus, points}` shape. `point_json`
/// must be a self-contained JSON object (its internal layout is the
/// caller's; multi-line objects are re-indented to the array level).
pub fn append_point(path: &Path, bench: &str, point_json: &str) -> io::Result<()> {
    let point = indent_point(point_json);
    let next = match std::fs::read_to_string(path) {
        Ok(text) => splice(&text, &point).unwrap_or_else(|| fresh(bench, &point)),
        // Only a genuinely missing file may start a fresh trajectory. Any
        // other read failure (permissions, I/O, a directory in the way) is
        // transient from the trajectory's point of view — rewriting fresh
        // here would silently erase the accumulated history.
        Err(e) if e.kind() == io::ErrorKind::NotFound => fresh(bench, &point),
        Err(e) => return Err(e),
    };
    std::fs::write(path, next)
}

/// Indent every line of a point object to the `points`-array level.
fn indent_point(point_json: &str) -> String {
    point_json
        .trim()
        .lines()
        .map(|l| format!("    {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Splice an (already indented) point before the closing `]` of the
/// `points` array. `None` when the text has no such array — the caller
/// then rewrites the file fresh.
fn splice(text: &str, point: &str) -> Option<String> {
    let key = text.find("\"points\"")?;
    let close = text.rfind(']')?;
    if close < key {
        return None;
    }
    let head = text[..close].trim_end();
    let sep = if head.ends_with('[') { "\n" } else { ",\n" };
    let rest = &text[close + 1..];
    Some(format!("{head}{sep}{point}\n  ]{rest}"))
}

/// A fresh trajectory file holding one point.
fn fresh(bench: &str, point: &str) -> String {
    format!(
        "{{\n  \"bench\": \"{bench}\",\n  \"host_cpus\": {},\n  \"points\": [\n{point}\n  ]\n}}\n",
        host_cpus()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let p =
            std::env::temp_dir().join(format!("dialite_record_{}_{name}.json", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn balanced(json: &str) {
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(
            json.matches('[').count(),
            json.matches(']').count(),
            "{json}"
        );
        assert!(!json.contains(",]") && !json.contains(",\n  ]"), "{json}");
        assert!(!json.contains(",}"), "{json}");
    }

    #[test]
    fn first_append_creates_the_unified_shape() {
        let path = scratch("fresh");
        append_point(&path, "demo", "{ \"x\": 1 }").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"bench\": \"demo\""), "{text}");
        assert!(text.contains("\"host_cpus\":"), "{text}");
        assert!(text.contains("\"points\": ["), "{text}");
        assert!(text.contains("{ \"x\": 1 }"), "{text}");
        balanced(&text);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn appends_accumulate_instead_of_overwriting() {
        let path = scratch("appends");
        append_point(&path, "demo", "{ \"run\": 1 }").unwrap();
        append_point(&path, "demo", "{ \"run\": 2 }").unwrap();
        append_point(&path, "demo", "{ \"run\": 3 }").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        for i in 1..=3 {
            assert!(text.contains(&format!("{{ \"run\": {i} }}")), "{text}");
        }
        // Points are comma-separated, in append order.
        assert!(
            text.find("\"run\": 1").unwrap() < text.find("\"run\": 2").unwrap()
                && text.find("\"run\": 2").unwrap() < text.find("\"run\": 3").unwrap(),
            "{text}"
        );
        assert_eq!(text.matches("\"bench\"").count(), 1, "{text}");
        balanced(&text);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn splice_preserves_extra_top_level_keys_and_existing_points() {
        let path = scratch("extra");
        std::fs::write(
            &path,
            "{\n  \"bench\": \"topk\",\n  \"host_cpus\": 1,\n  \"notes\": \"kept verbatim\",\n  \
             \"points\": [\n    { \"pr\": 4 }\n  ]\n}\n",
        )
        .unwrap();
        append_point(&path, "topk", "{ \"pr\": 7 }").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"notes\": \"kept verbatim\""), "{text}");
        assert!(text.contains("{ \"pr\": 4 },"), "{text}");
        assert!(text.contains("{ \"pr\": 7 }"), "{text}");
        balanced(&text);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn splice_into_an_empty_points_array_adds_no_comma() {
        let path = scratch("empty");
        std::fs::write(
            &path,
            "{\n  \"bench\": \"x\",\n  \"host_cpus\": 1,\n  \"points\": []\n}\n",
        )
        .unwrap();
        append_point(&path, "x", "{ \"a\": true }").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("{ \"a\": true }"), "{text}");
        balanced(&text);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn shapeless_file_is_rewritten_fresh() {
        let path = scratch("shapeless");
        std::fs::write(&path, "not json at all").unwrap();
        append_point(&path, "demo", "{ \"ok\": 1 }").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"bench\": \"demo\""), "{text}");
        assert!(!text.contains("not json"), "{text}");
        balanced(&text);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unreadable_path_propagates_instead_of_wiping_history() {
        // A directory at the trajectory path fails `read_to_string` with a
        // non-NotFound kind; that must surface as an error, not as a fresh
        // rewrite that would have erased whatever lives there.
        let dir = scratch("unreadable");
        std::fs::create_dir_all(&dir).unwrap();
        let err = append_point(&dir, "demo", "{ \"x\": 1 }").unwrap_err();
        assert_ne!(err.kind(), io::ErrorKind::NotFound, "{err}");
        assert!(
            std::fs::metadata(&dir).unwrap().is_dir(),
            "the blocking entry must be left untouched"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn multiline_points_are_indented_to_the_array_level() {
        let path = scratch("multiline");
        append_point(&path, "demo", "{\n  \"a\": 1,\n  \"b\": 2\n}").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("    {\n      \"a\": 1,"), "{text}");
        balanced(&text);
        let _ = std::fs::remove_file(&path);
    }
}
