//! Append-only recorder for the repo's `BENCH_*.json` trajectory files.
//!
//! Every bench trajectory uses one unified shape:
//!
//! ```json
//! {
//!   "bench": "topk",
//!   "host_cpus": 1,
//!   "points": [ { ... }, { ... } ]
//! }
//! ```
//!
//! `points` is append-only history: each `exp_*` binary or criterion
//! bench run *adds* its rows ([`append_point`]) instead of rewriting the
//! file, so older numbers stay visible in the trajectory and a regression
//! cannot silently erase its own baseline. Extra top-level keys
//! (`command`, `notes`, ...) are preserved verbatim; the one structural
//! requirement is that `"points"` is the **last** top-level key, so its
//! closing `]` is the last `]` in the file. There is no serde in this
//! offline workspace — the splice is plain string surgery, like every
//! other JSON producer here.

use std::fs::OpenOptions;
use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// The host's logical CPU count, as recorded in fresh trajectory files —
/// wall-clock numbers are only comparable within one `host_cpus` regime
/// (a 1-CPU bench host cannot show parallel fan-out speedups).
pub fn host_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Append one JSON object to the `points` array of the trajectory file at
/// `path`. A missing file — or one without a `points` array — is created
/// fresh in the unified `{bench, host_cpus, points}` shape. `point_json`
/// must be a self-contained JSON object (its internal layout is the
/// caller's; multi-line objects are re-indented to the array level).
///
/// Concurrent appends are safe: the read–splice–write cycle runs under a
/// sibling `.lock` file, so two bench processes (or threads) finishing at
/// once both land in the trajectory instead of the later write erasing
/// the earlier point. The new text goes to a sibling `.tmp` file first
/// and is renamed into place, so readers never observe a torn file.
pub fn append_point(path: &Path, bench: &str, point_json: &str) -> io::Result<()> {
    let point = indent_point(point_json);
    let _lock = acquire_lock(path)?;
    let next = match std::fs::read_to_string(path) {
        Ok(text) => splice(&text, &point).unwrap_or_else(|| fresh(bench, &point)),
        // Only a genuinely missing file may start a fresh trajectory. Any
        // other read failure (permissions, I/O, a directory in the way) is
        // transient from the trajectory's point of view — rewriting fresh
        // here would silently erase the accumulated history.
        Err(e) if e.kind() == io::ErrorKind::NotFound => fresh(bench, &point),
        Err(e) => return Err(e),
    };
    let tmp = sibling(path, ".tmp");
    std::fs::write(&tmp, next)?;
    std::fs::rename(&tmp, path)
}

/// `path` with `suffix` appended to its file name (same directory, so a
/// rename onto `path` stays within one filesystem).
fn sibling(path: &Path, suffix: &str) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| "trajectory".into());
    name.push(suffix);
    path.with_file_name(name)
}

/// Removes the lock file when the append is done (or fails).
struct LockGuard(PathBuf);

impl Drop for LockGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Take the trajectory's append lock: exclusive creation of a sibling
/// `.lock` file, polled until free. An append is a sub-millisecond string
/// splice, so a lock that stays held for seconds can only be the leftover
/// of a crashed writer — it is broken and the wait resumes, rather than
/// wedging every future bench run.
fn acquire_lock(path: &Path) -> io::Result<LockGuard> {
    let lock = sibling(path, ".lock");
    let start = Instant::now();
    loop {
        match OpenOptions::new().write(true).create_new(true).open(&lock) {
            Ok(_) => return Ok(LockGuard(lock)),
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                if start.elapsed() > Duration::from_secs(5) {
                    let _ = std::fs::remove_file(&lock);
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) => return Err(e),
        }
    }
}

/// Indent every line of a point object to the `points`-array level.
fn indent_point(point_json: &str) -> String {
    point_json
        .trim()
        .lines()
        .map(|l| format!("    {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Splice an (already indented) point before the closing `]` of the
/// `points` array. `None` when the text has no such array — the caller
/// then rewrites the file fresh.
fn splice(text: &str, point: &str) -> Option<String> {
    let key = text.find("\"points\"")?;
    let close = text.rfind(']')?;
    if close < key {
        return None;
    }
    let head = text[..close].trim_end();
    let sep = if head.ends_with('[') { "\n" } else { ",\n" };
    let rest = &text[close + 1..];
    Some(format!("{head}{sep}{point}\n  ]{rest}"))
}

/// A fresh trajectory file holding one point.
fn fresh(bench: &str, point: &str) -> String {
    format!(
        "{{\n  \"bench\": \"{bench}\",\n  \"host_cpus\": {},\n  \"points\": [\n{point}\n  ]\n}}\n",
        host_cpus()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let p =
            std::env::temp_dir().join(format!("dialite_record_{}_{name}.json", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn balanced(json: &str) {
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(
            json.matches('[').count(),
            json.matches(']').count(),
            "{json}"
        );
        assert!(!json.contains(",]") && !json.contains(",\n  ]"), "{json}");
        assert!(!json.contains(",}"), "{json}");
    }

    #[test]
    fn first_append_creates_the_unified_shape() {
        let path = scratch("fresh");
        append_point(&path, "demo", "{ \"x\": 1 }").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"bench\": \"demo\""), "{text}");
        assert!(text.contains("\"host_cpus\":"), "{text}");
        assert!(text.contains("\"points\": ["), "{text}");
        assert!(text.contains("{ \"x\": 1 }"), "{text}");
        balanced(&text);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn appends_accumulate_instead_of_overwriting() {
        let path = scratch("appends");
        append_point(&path, "demo", "{ \"run\": 1 }").unwrap();
        append_point(&path, "demo", "{ \"run\": 2 }").unwrap();
        append_point(&path, "demo", "{ \"run\": 3 }").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        for i in 1..=3 {
            assert!(text.contains(&format!("{{ \"run\": {i} }}")), "{text}");
        }
        // Points are comma-separated, in append order.
        assert!(
            text.find("\"run\": 1").unwrap() < text.find("\"run\": 2").unwrap()
                && text.find("\"run\": 2").unwrap() < text.find("\"run\": 3").unwrap(),
            "{text}"
        );
        assert_eq!(text.matches("\"bench\"").count(), 1, "{text}");
        balanced(&text);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn splice_preserves_extra_top_level_keys_and_existing_points() {
        let path = scratch("extra");
        std::fs::write(
            &path,
            "{\n  \"bench\": \"topk\",\n  \"host_cpus\": 1,\n  \"notes\": \"kept verbatim\",\n  \
             \"points\": [\n    { \"pr\": 4 }\n  ]\n}\n",
        )
        .unwrap();
        append_point(&path, "topk", "{ \"pr\": 7 }").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"notes\": \"kept verbatim\""), "{text}");
        assert!(text.contains("{ \"pr\": 4 },"), "{text}");
        assert!(text.contains("{ \"pr\": 7 }"), "{text}");
        balanced(&text);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn splice_into_an_empty_points_array_adds_no_comma() {
        let path = scratch("empty");
        std::fs::write(
            &path,
            "{\n  \"bench\": \"x\",\n  \"host_cpus\": 1,\n  \"points\": []\n}\n",
        )
        .unwrap();
        append_point(&path, "x", "{ \"a\": true }").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("{ \"a\": true }"), "{text}");
        balanced(&text);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn shapeless_file_is_rewritten_fresh() {
        let path = scratch("shapeless");
        std::fs::write(&path, "not json at all").unwrap();
        append_point(&path, "demo", "{ \"ok\": 1 }").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"bench\": \"demo\""), "{text}");
        assert!(!text.contains("not json"), "{text}");
        balanced(&text);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unreadable_path_propagates_instead_of_wiping_history() {
        // A directory at the trajectory path fails `read_to_string` with a
        // non-NotFound kind; that must surface as an error, not as a fresh
        // rewrite that would have erased whatever lives there.
        let dir = scratch("unreadable");
        std::fs::create_dir_all(&dir).unwrap();
        let err = append_point(&dir, "demo", "{ \"x\": 1 }").unwrap_err();
        assert_ne!(err.kind(), io::ErrorKind::NotFound, "{err}");
        assert!(
            std::fs::metadata(&dir).unwrap().is_dir(),
            "the blocking entry must be left untouched"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn multiline_points_are_indented_to_the_array_level() {
        let path = scratch("multiline");
        append_point(&path, "demo", "{\n  \"a\": 1,\n  \"b\": 2\n}").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("    {\n      \"a\": 1,"), "{text}");
        balanced(&text);
        let _ = std::fs::remove_file(&path);
    }

    /// The lost-update regression: before the lock, two appends racing
    /// through read–splice–write could both read the same base text and
    /// the later write would erase the earlier point. Every concurrent
    /// append must land exactly once.
    #[test]
    fn concurrent_appends_all_land() {
        const THREADS: usize = 8;
        const PER_THREAD: usize = 4;
        let path = scratch("concurrent");
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let path = &path;
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        let point = format!("{{ \"t\": {t}, \"i\": {i} }}");
                        append_point(path, "race", &point).unwrap();
                    }
                });
            }
        });
        let text = std::fs::read_to_string(&path).unwrap();
        for t in 0..THREADS {
            for i in 0..PER_THREAD {
                let point = format!("{{ \"t\": {t}, \"i\": {i} }}");
                assert_eq!(text.matches(&point).count(), 1, "missing {point}: {text}");
            }
        }
        assert_eq!(text.matches("\"bench\"").count(), 1, "{text}");
        balanced(&text);
        assert!(!sibling(&path, ".lock").exists(), "lock must be released");
        let _ = std::fs::remove_file(&path);
    }

    proptest::proptest! {
        /// Splice round-trips arbitrary well-shaped trajectory files:
        /// whatever the extra top-level keys and however many points are
        /// already there (zero included), the spliced text keeps every
        /// existing point verbatim, appends the new one last, and stays
        /// structurally balanced — so repeated bench runs can never decay
        /// the file shape.
        #[test]
        fn splice_round_trips_arbitrary_trajectory_files(
            existing in proptest::collection::vec(0u32..1_000_000, 0..8),
            notes in "[a-zA-Z0-9 _.-]{0,16}",
            with_notes in any::<bool>(),
            trailing_newline in any::<bool>(),
        ) {
            let mut text = String::from("{\n  \"bench\": \"t\",\n  \"host_cpus\": 2,\n");
            if with_notes {
                text.push_str(&format!("  \"notes\": \"{notes}\",\n"));
            }
            if existing.is_empty() {
                text.push_str("  \"points\": []\n}");
            } else {
                let body = existing
                    .iter()
                    .map(|v| format!("    {{ \"v\": {v} }}"))
                    .collect::<Vec<_>>()
                    .join(",\n");
                text.push_str(&format!("  \"points\": [\n{body}\n  ]\n}}"));
            }
            if trailing_newline {
                text.push('\n');
            }

            let spliced = splice(&text, &indent_point("{ \"new\": true }"))
                .expect("well-shaped trajectory must splice");
            for v in &existing {
                let point = format!("{{ \"v\": {v} }}");
                prop_assert!(spliced.contains(&point), "lost {point}: {spliced}");
            }
            let new_at = spliced.find("{ \"new\": true }").expect("new point present");
            for v in &existing {
                let at = spliced.find(&format!("{{ \"v\": {v} }}")).unwrap();
                prop_assert!(at < new_at, "new point must append last: {spliced}");
            }
            balanced(&spliced);
            if with_notes {
                prop_assert!(
                    spliced.contains(&format!("\"notes\": \"{notes}\"")),
                    "extra keys kept verbatim: {spliced}"
                );
            }

            // And the spliced text is itself a valid splice base: a second
            // append still lands cleanly (the round-trip part).
            let again = splice(&spliced, &indent_point("{ \"again\": 2 }"))
                .expect("spliced output must remain spliceable");
            prop_assert!(again.contains("{ \"new\": true },"), "{again}");
            prop_assert!(again.contains("{ \"again\": 2 }"), "{again}");
            balanced(&again);
        }
    }
}
