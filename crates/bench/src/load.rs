//! Concurrent load driver for the discovery serving layer — the
//! crud-bench-shaped half of `exp_serving`.
//!
//! [`run_load`] replays a [`ServingTrace`] against a shared
//! [`DiscoveryService`] from N client threads draining one atomic cursor
//! (so the trace is consumed exactly once, in cursor order, with arbitrary
//! completion interleavings), after a single-threaded query-only warmup
//! that fills the planner's signature cache. It reports sustained qps and
//! tail latency from the service's own
//! [`ServingTelemetry`](dialite_discovery::ServingTelemetry).
//!
//! With [`LoadConfig::verify`] on, the run doubles as a linearization
//! check: every mutation appends its op index to a log *inside* the
//! [`DiscoveryService::mutate`] closure — i.e. under the service's write
//! lock — so log order *is* the serialization order; every response
//! carries the lake version it was served against. Afterwards a
//! single-threaded replay walks the log, rebuilding each intermediate lake
//! state, and asserts every concurrent response byte-identical to
//! [`dialite_discovery::LakeIndex::discover_all_budgeted`] at its stamped
//! version. Run verification with the exact (sketch-free) index config and
//! an unlimited budget — the regime where discovery output is a pure
//! function of lake state (see `crates/discovery/tests/serving_oracle.rs`).
//! The replay is always a *single* `LakeIndex`, whatever the service's
//! shard count: under the exact config sharded fan-out output is
//! byte-identical to the single index (`tests/shard_oracle.rs`), so the
//! same replay doubles as a cross-shard equivalence check.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use dialite_discovery::{
    DiscoveryBudget, DiscoveryService, LakeIndex, LakeIndexConfig, LatencyPercentiles,
    ServingError, TableQuery,
};
use dialite_kb::KnowledgeBase;
use dialite_table::DataLake;

use dialite_datagen::workloads::{ServingOp, ServingTrace};

/// Parameters of one [`run_load`] execution.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent client threads.
    pub clients: usize,
    /// Single-threaded warmup queries (round-robin over the pool) before
    /// the measured window; telemetry is reset afterwards.
    pub warmup_queries: usize,
    /// Per-engine result count per query.
    pub k: usize,
    /// Per-request budget.
    pub budget: DiscoveryBudget,
    /// Run the post-hoc linearization check (see module docs). Only
    /// meaningful with an exact index config + unlimited budget.
    pub verify: bool,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            clients: 8,
            warmup_queries: 64,
            k: 10,
            budget: DiscoveryBudget::default(),
            verify: false,
        }
    }
}

/// What one [`run_load`] execution measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Client threads driven.
    pub clients: usize,
    /// Queries answered in the measured window.
    pub queries: u64,
    /// Mutations applied in the measured window.
    pub mutations: u64,
    /// Queries rejected with [`ServingError::Busy`].
    pub busy: u64,
    /// Measured-window wall time in seconds.
    pub wall_secs: f64,
    /// Sustained answered queries per second.
    pub qps: f64,
    /// Query-latency export (p50/p90/p99/p999 + mean) from the service's
    /// sharded histogram.
    pub latency: LatencyPercentiles,
    /// Responses proven byte-identical to their single-threaded
    /// linearization (`None` when [`LoadConfig::verify`] was off).
    pub verified: Option<usize>,
}

impl LoadReport {
    /// One row of the experiment table:
    /// `clients qps p50 p90 p99 p999 busy`.
    pub fn row(&self) -> Vec<String> {
        let us = |v: Option<f64>| match v {
            Some(us) => format!("{:.0}us", us),
            None => "-".into(),
        };
        vec![
            self.clients.to_string(),
            format!("{:.0}", self.qps),
            us(self.latency.p50_us),
            us(self.latency.p90_us),
            us(self.latency.p99_us),
            us(self.latency.p999_us),
            self.busy.to_string(),
        ]
    }
}

/// One answered query, as the verifier needs it: which pool table, the
/// stamped version, and the full response payload.
struct Answered {
    pool_idx: usize,
    version: u64,
    results: Vec<(String, Vec<dialite_discovery::Discovered>)>,
}

/// Drive `trace` through `service` from [`LoadConfig::clients`] threads
/// and report sustained throughput + tail latency (see module docs).
///
/// # Panics
///
/// With [`LoadConfig::verify`] on, panics if any concurrent response
/// diverges from its single-threaded linearization — that is the point.
pub fn run_load(
    service: &DiscoveryService,
    trace: &ServingTrace,
    config: &LoadConfig,
) -> LoadReport {
    let queries: Vec<TableQuery> = trace
        .pool
        .iter()
        .map(|t| TableQuery::with_column(t.clone(), 0))
        .collect();
    assert!(!queries.is_empty(), "serving trace has an empty query pool");

    // Warmup: query-only, single-threaded, then drop the numbers.
    for i in 0..config.warmup_queries {
        let _ = service.query(&queries[i % queries.len()], config.k, &config.budget);
    }
    service.reset_telemetry();

    // Measured window: N clients drain one cursor.
    let cursor = AtomicUsize::new(0);
    let mutation_log: Mutex<Vec<usize>> = Mutex::new(Vec::new());
    let answered: Mutex<Vec<Answered>> = Mutex::new(Vec::new());
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..config.clients.max(1) {
            scope.spawn(|| {
                let mut local_answers: Vec<Answered> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(op) = trace.ops.get(i) else { break };
                    match op {
                        ServingOp::Query(p) => {
                            match service.query(&queries[*p], config.k, &config.budget) {
                                Ok(response) => {
                                    if config.verify {
                                        local_answers.push(Answered {
                                            pool_idx: *p,
                                            version: response.version,
                                            results: response.results,
                                        });
                                    }
                                }
                                Err(ServingError::Busy) => {}
                            }
                        }
                        ServingOp::Mutate(_) => {
                            service.mutate(|lake| {
                                op.apply_tolerant(lake);
                                if config.verify {
                                    // Under the service write lock: log
                                    // order == serialization order.
                                    mutation_log.lock().unwrap().push(i);
                                }
                            });
                        }
                    }
                }
                if config.verify {
                    answered.lock().unwrap().append(&mut local_answers);
                }
            });
        }
    });
    let wall_secs = t0.elapsed().as_secs_f64();

    let telemetry = service.telemetry();
    let verified = config.verify.then(|| {
        verify_linearization(
            service,
            trace,
            &queries,
            config,
            mutation_log.into_inner().unwrap(),
            answered.into_inner().unwrap(),
        )
    });
    LoadReport {
        clients: config.clients.max(1),
        queries: telemetry.served,
        mutations: telemetry.mutations,
        busy: telemetry.rejected,
        wall_secs,
        qps: telemetry.served as f64 / wall_secs.max(1e-9),
        latency: telemetry.query_latency.percentiles(),
        verified,
    }
}

/// Single-threaded replay: walk the serialized mutation log, and at every
/// intermediate state answer the queries stamped with that state's
/// version; assert byte-identity. Returns the number of responses checked.
fn verify_linearization(
    service: &DiscoveryService,
    trace: &ServingTrace,
    queries: &[TableQuery],
    config: &LoadConfig,
    mutation_log: Vec<usize>,
    mut answered: Vec<Answered>,
) -> usize {
    // The replay lake mints its own (different) global version stamps, so
    // service versions cannot be compared to replay versions directly.
    // What can be relied on: (a) all responses stamped with one version
    // were served from one lake state; (b) service versions are monotone
    // in mutation-log order, so sorting responses by stamped version puts
    // them in state order; (c) replaying the log in order reproduces the
    // exact state sequence. The walk below advances the replay through
    // the log until each version-group of responses matches, and never
    // rewinds — if a response matches no serialized state, the service
    // linearization is broken and the walk panics.
    answered.sort_by_key(|a| a.version);
    let (kb, index_config) = service.with_state(|_, index| (index.kb(), index.config()));
    let mut replay = DataLake::new();
    for t in &trace.initial {
        replay.upsert(t.clone());
    }
    let mut index = LakeIndex::build(&replay, kb, index_config);

    let matches = |index: &LakeIndex, a: &Answered| {
        index.discover_all_budgeted(&queries[a.pool_idx], config.k, &config.budget) == a.results
    };
    let mut checked = 0usize;
    let mut remaining = answered.as_slice();
    let mut log_pos = 0usize;
    while !remaining.is_empty() {
        let version = remaining[0].version;
        let group_len = remaining
            .iter()
            .take_while(|a| a.version == version)
            .count();
        let (group, rest) = remaining.split_at(group_len);
        while !group.iter().all(|a| matches(&index, a)) {
            assert!(
                log_pos < mutation_log.len(),
                "linearization violated: {} response(s) stamped v{version} match no \
                 serialized lake state",
                group.len(),
            );
            trace.ops[mutation_log[log_pos]].apply_tolerant(&mut replay);
            index.sync(&replay);
            log_pos += 1;
        }
        checked += group.len();
        remaining = rest;
    }
    checked
}

/// Convenience for `exp_serving` and tests: build a service over the
/// trace's initial lake with the given config.
pub fn service_over(
    trace: &ServingTrace,
    kb: Arc<KnowledgeBase>,
    index_config: LakeIndexConfig,
    serving: dialite_discovery::ServingConfig,
) -> DiscoveryService {
    let mut lake = DataLake::new();
    for t in &trace.initial {
        lake.add(t.clone())
            .expect("initial tables have unique names");
    }
    DiscoveryService::new(lake, kb, index_config, serving)
}
