//! Criterion bench behind experiment E5: the end-to-end demo pipeline
//! (discover → align → integrate) and its stages in isolation.

use criterion::{criterion_group, criterion_main, Criterion};
use dialite_core::{demo, Pipeline};
use dialite_discovery::TableQuery;

fn bench_pipeline(c: &mut Criterion) {
    let lake = demo::covid_lake();
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);

    group.bench_function("build-demo-indexes", |b| {
        b.iter(|| Pipeline::demo_default(std::hint::black_box(&lake)))
    });

    let pipeline = Pipeline::demo_default(&lake);
    group.bench_function("run-end-to-end", |b| {
        b.iter(|| {
            let query = TableQuery::with_column(demo::fig2_query(), 1);
            pipeline
                .run(std::hint::black_box(&lake), &query)
                .expect("pipeline")
        })
    });

    group.bench_function("integrate-set-fig7", |b| {
        b.iter(|| {
            let (t4, t5, t6) = demo::fig7_tables();
            pipeline
                .integrate_set(vec![t4, t5, t6])
                .expect("integration")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
