//! Criterion bench behind experiment E8: holistic matcher runtime versus
//! the column count of the integration set, plus the baseline.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dialite_align::{Alignment, HolisticMatcher, KbAnnotator};
use dialite_datagen::lake::{LakeSpec, SyntheticLake};
use dialite_table::Table;

fn bench_align(c: &mut Criterion) {
    let mut group = c.benchmark_group("align");
    group.sample_size(10);
    for fragments in [3usize, 6, 9] {
        let synth = SyntheticLake::generate(&LakeSpec {
            universes: 1,
            fragments_per_universe: fragments,
            rows_per_universe: 60,
            categorical_cols: 3,
            numeric_cols: 1,
            null_rate: 0.05,
            value_dirt_rate: 0.0,
            scramble_headers: true,
            seed: 21,
        });
        let tables_owned: Vec<Table> = synth.lake.tables().map(|t| t.as_ref().clone()).collect();
        let refs: Vec<&Table> = tables_owned.iter().collect();
        let kb = Arc::new(synth.truth.kb.clone());

        let holistic = HolisticMatcher::default();
        group.bench_with_input(
            BenchmarkId::new("holistic", fragments),
            &fragments,
            |b, _| b.iter(|| holistic.align(std::hint::black_box(&refs))),
        );
        let with_kb = HolisticMatcher::default().with_annotator(Arc::new(KbAnnotator::new(kb)));
        group.bench_with_input(
            BenchmarkId::new("holistic+kb", fragments),
            &fragments,
            |b, _| b.iter(|| with_kb.align(std::hint::black_box(&refs))),
        );
        group.bench_with_input(
            BenchmarkId::new("by-headers", fragments),
            &fragments,
            |b, _| b.iter(|| Alignment::by_headers(std::hint::black_box(&refs))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_align);
criterion_main!(benches);
