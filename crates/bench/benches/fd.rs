//! Criterion bench behind experiment E6: FD engines on the star workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dialite_align::Alignment;
use dialite_datagen::workloads::FdWorkload;
use dialite_integrate::{AliteFd, Integrator, NaiveFd, OuterJoinIntegrator, ParallelFd};
use dialite_table::Table;

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("fd");
    group.sample_size(10);
    for rows in [50usize, 150, 400] {
        let tables = FdWorkload {
            tables: 4,
            rows,
            key_domain: rows * 2,
            null_rate: 0.1,
            seed: 3,
        }
        .generate();
        let refs: Vec<&Table> = tables.iter().collect();
        let al = Alignment::by_headers(&refs);
        let engines: Vec<Box<dyn Integrator>> = vec![
            Box::new(NaiveFd::default()),
            Box::new(AliteFd::default()),
            Box::new(ParallelFd::default()),
            Box::new(OuterJoinIntegrator),
        ];
        for engine in engines {
            group.bench_with_input(
                BenchmarkId::new(engine.name().to_string(), rows),
                &rows,
                |b, _| {
                    b.iter(|| {
                        engine
                            .integrate(std::hint::black_box(&refs), &al)
                            .expect("within budget")
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
