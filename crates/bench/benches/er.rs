//! Criterion bench behind experiment E10: entity-resolution throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dialite_analyze::{EntityResolver, ErConfig, Gazetteer};
use dialite_datagen::workloads::ErWorkload;

fn bench_er(c: &mut Criterion) {
    let mut group = c.benchmark_group("er");
    group.sample_size(10);
    for entities in [50usize, 200, 500] {
        let (table, _) = ErWorkload {
            entities,
            mentions_per_entity: 3,
            null_rate: 0.2,
            seed: 4,
        }
        .generate();
        let er = EntityResolver::new(ErConfig::default(), Gazetteer::new());
        group.bench_with_input(
            BenchmarkId::new("resolve", entities * 3),
            &entities,
            |b, _| b.iter(|| er.resolve(std::hint::black_box(&table))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_er);
criterion_main!(benches);
