//! Criterion bench behind experiment E7: discovery index build and query
//! latency — plus the lake-churn comparison (incremental single-table
//! maintenance vs full index rebuild) behind the `LakeIndex` subsystem.

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use dialite_datagen::lake::{LakeSpec, SyntheticLake};
use dialite_datagen::workloads::ChurnWorkload;
use dialite_discovery::{
    Discovery, ExactOverlapDiscovery, LshEnsembleConfig, LshEnsembleDiscovery, SantosConfig,
    SantosDiscovery, TableQuery,
};
use dialite_table::{DataLake, Table, Value};

fn bench_discovery(c: &mut Criterion) {
    let synth = SyntheticLake::generate(&LakeSpec {
        universes: 6,
        fragments_per_universe: 5,
        rows_per_universe: 80,
        categorical_cols: 3,
        numeric_cols: 1,
        null_rate: 0.05,
        value_dirt_rate: 0.0,
        scramble_headers: true,
        seed: 8,
    });
    let kb = Arc::new(synth.truth.kb.clone());
    let query_table = synth.lake.tables().next().unwrap().as_ref().clone();
    let query = TableQuery::with_column(query_table, 0);

    let mut group = c.benchmark_group("discovery");
    group.sample_size(10);

    group.bench_function("build/santos", |b| {
        b.iter(|| SantosDiscovery::build(&synth.lake, kb.clone(), SantosConfig::default()))
    });
    group.bench_function("build/lsh-ensemble", |b| {
        b.iter(|| LshEnsembleDiscovery::build(&synth.lake, LshEnsembleConfig::default()))
    });
    group.bench_function("build/exact-overlap", |b| {
        b.iter(|| ExactOverlapDiscovery::build(&synth.lake, true))
    });

    let santos = SantosDiscovery::build(&synth.lake, kb.clone(), SantosConfig::default());
    let lshe = LshEnsembleDiscovery::build(&synth.lake, LshEnsembleConfig::default());
    let overlap = ExactOverlapDiscovery::build(&synth.lake, true);
    group.bench_function("query/santos", |b| {
        b.iter(|| santos.discover(std::hint::black_box(&query), 8))
    });
    group.bench_function("query/lsh-ensemble", |b| {
        b.iter(|| lshe.discover(std::hint::black_box(&query), 8))
    });
    group.bench_function("query/exact-overlap", |b| {
        b.iter(|| overlap.discover(std::hint::black_box(&query), 8))
    });
    group.finish();
}

/// A table of fresh tokens no other lake table shares, so a query over its
/// keys has exactly one (decisive, containment-1.0) true match — keeping
/// the incremental-vs-rebuild equality check away from the LSH borderline.
fn newcomer_table() -> Table {
    let rows: Vec<Vec<Value>> = (0..24)
        .map(|i| vec![Value::Text(format!("fresh{i}")), Value::Int(i)])
        .collect();
    Table::from_rows("newcomer", &["key", "val"], rows).expect("fixed arity")
}

/// Single-table churn into a 1k-table lake: incremental `upsert_table` vs
/// a full `build()` of the final lake. Output equality is asserted here —
/// the bench refuses to publish numbers for diverging indexes.
fn bench_churn(c: &mut Criterion) {
    let trace = ChurnWorkload {
        initial_tables: 1000,
        rows_per_table: 24,
        vocab: 20_000,
        ops: 0,
        seed: 41,
    }
    .generate();
    let mut lake = DataLake::from_tables(trace.initial).unwrap();
    let config = LshEnsembleConfig::default();

    let mut engine = LshEnsembleDiscovery::build(&lake, config.clone());
    let newcomer = newcomer_table();
    let slot = lake.add_table(newcomer.clone()).unwrap();
    let query = TableQuery::with_column(
        Table::from_rows(
            "churn_probe",
            &["key"],
            (0..24)
                .map(|i| vec![Value::Text(format!("fresh{i}"))])
                .collect(),
        )
        .unwrap(),
        0,
    );

    // Headline numbers + equality gate, measured once outside the
    // criterion loop so the speedup is printed as a single line.
    let t0 = Instant::now();
    engine.upsert_table(slot, &newcomer);
    let incremental = t0.elapsed();
    let t1 = Instant::now();
    let fresh = LshEnsembleDiscovery::build(&lake, config.clone());
    let rebuild = t1.elapsed();
    let inc_hits = engine.discover(&query, 8);
    let fresh_hits = fresh.discover(&query, 8);
    assert_eq!(
        inc_hits, fresh_hits,
        "incremental index diverged from full rebuild"
    );
    assert_eq!(inc_hits[0].table, "newcomer");
    println!(
        "bench churn/headline: add 1 table into 1k-table lake: incremental {:?} vs rebuild {:?} ({:.1}x)",
        incremental,
        rebuild,
        rebuild.as_secs_f64() / incremental.as_secs_f64().max(1e-9),
    );

    let mut group = c.benchmark_group("churn");
    group.sample_size(10);
    // Query first: `engine` is in its honest post-one-churn state here.
    // The upsert loop below re-stages the same slot thousands of times,
    // piling up dead postings no real workload would accumulate between
    // rebalances — querying after it would publish a pathological number.
    group.bench_function("query/after-churn", |b| {
        b.iter(|| engine.discover(std::hint::black_box(&query), 8))
    });
    group.bench_function("incremental/upsert-one-of-1k", |b| {
        b.iter(|| engine.upsert_table(slot, std::hint::black_box(&newcomer)))
    });
    group.bench_function("rebuild/full-build-1k", |b| {
        b.iter(|| LshEnsembleDiscovery::build(std::hint::black_box(&lake), config.clone()))
    });
    group.finish();
}

criterion_group!(benches, bench_discovery, bench_churn);
criterion_main!(benches);
