//! Criterion bench behind experiment E7: discovery index build and query
//! latency.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use dialite_datagen::lake::{LakeSpec, SyntheticLake};
use dialite_discovery::{
    Discovery, ExactOverlapDiscovery, LshEnsembleConfig, LshEnsembleDiscovery, SantosConfig,
    SantosDiscovery, TableQuery,
};

fn bench_discovery(c: &mut Criterion) {
    let synth = SyntheticLake::generate(&LakeSpec {
        universes: 6,
        fragments_per_universe: 5,
        rows_per_universe: 80,
        categorical_cols: 3,
        numeric_cols: 1,
        null_rate: 0.05,
        value_dirt_rate: 0.0,
        scramble_headers: true,
        seed: 8,
    });
    let kb = Arc::new(synth.truth.kb.clone());
    let query_table = synth.lake.tables().next().unwrap().as_ref().clone();
    let query = TableQuery::with_column(query_table, 0);

    let mut group = c.benchmark_group("discovery");
    group.sample_size(10);

    group.bench_function("build/santos", |b| {
        b.iter(|| SantosDiscovery::build(&synth.lake, kb.clone(), SantosConfig::default()))
    });
    group.bench_function("build/lsh-ensemble", |b| {
        b.iter(|| LshEnsembleDiscovery::build(&synth.lake, LshEnsembleConfig::default()))
    });
    group.bench_function("build/exact-overlap", |b| {
        b.iter(|| ExactOverlapDiscovery::build(&synth.lake, true))
    });

    let santos = SantosDiscovery::build(&synth.lake, kb.clone(), SantosConfig::default());
    let lshe = LshEnsembleDiscovery::build(&synth.lake, LshEnsembleConfig::default());
    let overlap = ExactOverlapDiscovery::build(&synth.lake, true);
    group.bench_function("query/santos", |b| {
        b.iter(|| santos.discover(std::hint::black_box(&query), 8))
    });
    group.bench_function("query/lsh-ensemble", |b| {
        b.iter(|| lshe.discover(std::hint::black_box(&query), 8))
    });
    group.bench_function("query/exact-overlap", |b| {
        b.iter(|| overlap.discover(std::hint::black_box(&query), 8))
    });
    group.finish();
}

criterion_group!(benches, bench_discovery);
criterion_main!(benches);
