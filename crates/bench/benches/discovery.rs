//! Criterion bench behind experiment E7: discovery index build and query
//! latency — plus the lake-churn comparison (incremental single-table
//! maintenance vs full index rebuild) behind the `LakeIndex` subsystem,
//! the `topk` group racing the budgeted `TopKPlanner` against the
//! probe-all query path on a skewed 1k-table lake, the `pipeline` group
//! racing the planner-routed budgeted discovery *stage* against the legacy
//! probe-all stage, the `santos_cap` group racing capped bound-ranked
//! SANTOS retrieval against exhaustive scoring on a type-dense lake, and
//! the `cost_model` group racing the JOSIE-style cost-bounded exact path
//! against the full posting merge (plus typeless SANTOS against its full
//! scan) on mid-size queries.

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use dialite_bench::record;
use dialite_core::Pipeline;
use dialite_datagen::lake::{LakeSpec, SyntheticLake};
use dialite_datagen::workloads::{
    ChurnWorkload, HeterogeneousLakeWorkload, SantosWorkload, StreamedLakeWorkload, TopKWorkload,
};
use dialite_discovery::{
    Discovery, DiscoveryBudget, ExactOverlapDiscovery, LakeIndex, LakeIndexConfig,
    LshEnsembleConfig, LshEnsembleDiscovery, MetadataConfig, MetadataDiscovery, QueryBudget,
    SantosConfig, SantosDiscovery, ShardedLakeIndex, TableQuery, TopKPlanner,
};
use dialite_kb::curated::covid_kb;
use dialite_table::{DataLake, Table, Value};

fn bench_discovery(c: &mut Criterion) {
    let synth = SyntheticLake::generate(&LakeSpec {
        universes: 6,
        fragments_per_universe: 5,
        rows_per_universe: 80,
        categorical_cols: 3,
        numeric_cols: 1,
        null_rate: 0.05,
        value_dirt_rate: 0.0,
        scramble_headers: true,
        seed: 8,
    });
    let kb = Arc::new(synth.truth.kb.clone());
    let query_table = synth.lake.tables().next().unwrap().as_ref().clone();
    let query = TableQuery::with_column(query_table, 0);

    let mut group = c.benchmark_group("discovery");
    group.sample_size(10);

    group.bench_function("build/santos", |b| {
        b.iter(|| SantosDiscovery::build(&synth.lake, kb.clone(), SantosConfig::default()))
    });
    group.bench_function("build/lsh-ensemble", |b| {
        b.iter(|| LshEnsembleDiscovery::build(&synth.lake, LshEnsembleConfig::default()))
    });
    group.bench_function("build/exact-overlap", |b| {
        b.iter(|| ExactOverlapDiscovery::build(&synth.lake, true))
    });

    let santos = SantosDiscovery::build(&synth.lake, kb.clone(), SantosConfig::default());
    let lshe = LshEnsembleDiscovery::build(&synth.lake, LshEnsembleConfig::default());
    let overlap = ExactOverlapDiscovery::build(&synth.lake, true);
    group.bench_function("query/santos", |b| {
        b.iter(|| santos.discover(std::hint::black_box(&query), 8))
    });
    group.bench_function("query/lsh-ensemble", |b| {
        b.iter(|| lshe.discover(std::hint::black_box(&query), 8))
    });
    group.bench_function("query/exact-overlap", |b| {
        b.iter(|| overlap.discover(std::hint::black_box(&query), 8))
    });
    group.finish();
}

/// A table of fresh tokens no other lake table shares, so a query over its
/// keys has exactly one (decisive, containment-1.0) true match — keeping
/// the incremental-vs-rebuild equality check away from the LSH borderline.
fn newcomer_table() -> Table {
    let rows: Vec<Vec<Value>> = (0..24)
        .map(|i| vec![Value::Text(format!("fresh{i}")), Value::Int(i)])
        .collect();
    Table::from_rows("newcomer", &["key", "val"], rows).expect("fixed arity")
}

/// Single-table churn into a 1k-table lake: incremental `upsert_table` vs
/// a full `build()` of the final lake. Output equality is asserted here —
/// the bench refuses to publish numbers for diverging indexes.
fn bench_churn(c: &mut Criterion) {
    let trace = ChurnWorkload {
        initial_tables: 1000,
        rows_per_table: 24,
        vocab: 20_000,
        ops: 0,
        seed: 41,
    }
    .generate();
    let mut lake = DataLake::from_tables(trace.initial).unwrap();
    let config = LshEnsembleConfig::default();

    let mut engine = LshEnsembleDiscovery::build(&lake, config.clone());
    let newcomer = newcomer_table();
    let slot = lake.add_table(newcomer.clone()).unwrap();
    let query = TableQuery::with_column(
        Table::from_rows(
            "churn_probe",
            &["key"],
            (0..24)
                .map(|i| vec![Value::Text(format!("fresh{i}"))])
                .collect(),
        )
        .unwrap(),
        0,
    );

    // Headline numbers + equality gate, measured once outside the
    // criterion loop so the speedup is printed as a single line.
    let t0 = Instant::now();
    engine.upsert_table(slot, &newcomer);
    let incremental = t0.elapsed();
    let t1 = Instant::now();
    let fresh = LshEnsembleDiscovery::build(&lake, config.clone());
    let rebuild = t1.elapsed();
    let inc_hits = engine.discover(&query, 8);
    let fresh_hits = fresh.discover(&query, 8);
    assert_eq!(
        inc_hits, fresh_hits,
        "incremental index diverged from full rebuild"
    );
    assert_eq!(inc_hits[0].table, "newcomer");
    println!(
        "bench churn/headline: add 1 table into 1k-table lake: incremental {:?} vs rebuild {:?} ({:.1}x)",
        incremental,
        rebuild,
        rebuild.as_secs_f64() / incremental.as_secs_f64().max(1e-9),
    );

    let mut group = c.benchmark_group("churn");
    group.sample_size(10);
    // Query first: `engine` is in its honest post-one-churn state here.
    // The upsert loop below re-stages the same slot thousands of times,
    // piling up dead postings no real workload would accumulate between
    // rebalances — querying after it would publish a pathological number.
    group.bench_function("query/after-churn", |b| {
        b.iter(|| engine.discover(std::hint::black_box(&query), 8))
    });
    group.bench_function("incremental/upsert-one-of-1k", |b| {
        b.iter(|| engine.upsert_table(slot, std::hint::black_box(&newcomer)))
    });
    group.bench_function("rebuild/full-build-1k", |b| {
        b.iter(|| LshEnsembleDiscovery::build(std::hint::black_box(&lake), config.clone()))
    });
    group.finish();
}

/// The budgeted top-k planner vs the PR 3 probe-all query path, on the
/// skewed 1k-table workload where scheduling actually matters: a few hub
/// tables contain the queries, a long tail of small tables fills low-bound
/// partitions the planner proves irrelevant without probing. Output
/// equality (planner == probe-all at unlimited budget) is asserted for
/// every query before any number is published.
fn bench_topk(c: &mut Criterion) {
    let trace = TopKWorkload {
        tables: 1000,
        hub_tables: 4,
        hub_rows: 256,
        tail_rows: 12,
        vocab: 40_000,
        queries: 16,
        query_rows: 128,
        seed: 47,
    }
    .generate();
    let lake = DataLake::from_tables(trace.tables).unwrap();
    let engine = LshEnsembleDiscovery::build(&lake, LshEnsembleConfig::default());
    let queries: Vec<TableQuery> = trace
        .queries
        .into_iter()
        .map(|q| TableQuery::with_column(q, 0))
        .collect();
    let budget = QueryBudget::unlimited();
    let planner = TopKPlanner::new();

    // Equality gate (also warms the signature cache for every query).
    for q in &queries {
        assert_eq!(
            planner.discover_top_k(&engine, q, 10, &budget),
            engine.discover(q, 10),
            "planner diverged from probe-all on {}",
            q.table.name()
        );
    }

    // Headline: mean per-query latency over the whole query set, probe-all
    // vs the warm-cache planner, measured once outside the criterion loop.
    const REPS: usize = 30;
    let t0 = Instant::now();
    for _ in 0..REPS {
        for q in &queries {
            std::hint::black_box(engine.discover(std::hint::black_box(q), 10));
        }
    }
    let probe_all = t0.elapsed() / (REPS * queries.len()) as u32;
    let t1 = Instant::now();
    for _ in 0..REPS {
        for q in &queries {
            std::hint::black_box(planner.discover_top_k(
                &engine,
                std::hint::black_box(q),
                10,
                &budget,
            ));
        }
    }
    let planned = t1.elapsed() / (REPS * queries.len()) as u32;
    println!(
        "bench topk/headline: skewed 1k-table query: probe-all {:?} vs planner (warm cache) {:?} ({:.1}x)",
        probe_all,
        planned,
        probe_all.as_secs_f64() / planned.as_secs_f64().max(1e-12),
    );

    let mut group = c.benchmark_group("topk");
    group.sample_size(10);
    group.bench_function("probe-all/skewed-1k", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % queries.len();
            engine.discover(std::hint::black_box(&queries[i]), 10)
        })
    });
    group.bench_function("planner/warm-cache", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % queries.len();
            planner.discover_top_k(&engine, std::hint::black_box(&queries[i]), 10, &budget)
        })
    });
    group.bench_function("planner/cold-cache", |b| {
        let cold = TopKPlanner::with_cache_capacity(0);
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % queries.len();
            cold.discover_top_k(&engine, std::hint::black_box(&queries[i]), 10, &budget)
        })
    });
    group.bench_function("planner/budget-2-partitions", |b| {
        let capped = QueryBudget::unlimited().with_max_partitions(2);
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % queries.len();
            planner.discover_top_k(&engine, std::hint::black_box(&queries[i]), 10, &capped)
        })
    });
    group.finish();
}

/// The planner-routed, budgeted discovery *stage* (`Pipeline::run`'s
/// discovery leg: capped SANTOS + planned joinable search) vs the legacy
/// probe-all stage (`LakeIndex::discover_all`) on the skewed 1k-table
/// workload. Equality (budgeted stage at unlimited budget == legacy, per
/// engine, byte-for-byte) is asserted for every query before any number
/// is published; the measured configuration then uses the finite
/// `DiscoveryBudget::default()` — the pipeline's out-of-the-box setting.
fn bench_pipeline_stage(c: &mut Criterion) {
    let trace = TopKWorkload {
        tables: 1000,
        hub_tables: 4,
        hub_rows: 256,
        tail_rows: 12,
        vocab: 40_000,
        queries: 16,
        query_rows: 128,
        seed: 47,
    }
    .generate();
    let lake = DataLake::from_tables(trace.tables).unwrap();
    let kb = Arc::new(covid_kb());
    let config = LakeIndexConfig::default();
    let legacy = LakeIndex::build(&lake, kb.clone(), config.clone());
    let pipeline = Pipeline::builder()
        .indexed_discovery(kb.clone(), config.clone())
        .top_k(10)
        .build();
    assert_eq!(
        pipeline.discovery_budget(),
        DiscoveryBudget::default(),
        "the bench must measure the out-of-the-box budget"
    );
    let queries: Vec<TableQuery> = trace
        .queries
        .into_iter()
        .map(|q| TableQuery::with_column(q, 0))
        .collect();

    // Equality gate: at unlimited budget the routed stage reproduces the
    // legacy probe-all stage exactly (also warms index + signature cache).
    let mut exact = Pipeline::builder()
        .indexed_discovery(kb, config)
        .top_k(10)
        .build();
    exact.set_discovery_budget(DiscoveryBudget::unlimited());
    for q in &queries {
        assert_eq!(
            exact.discover_stage(&lake, q),
            legacy.discover_all(q, 10),
            "unlimited budgeted stage diverged from probe-all on {}",
            q.table.name()
        );
        // Warm the default-budget pipeline's own index too.
        std::hint::black_box(pipeline.discover_stage(&lake, q));
    }

    // Headline: mean per-query stage latency, probe-all vs the budgeted
    // default, measured once outside the criterion loop.
    const REPS: usize = 20;
    let t0 = Instant::now();
    for _ in 0..REPS {
        for q in &queries {
            std::hint::black_box(legacy.discover_all(std::hint::black_box(q), 10));
        }
    }
    let probe_all = t0.elapsed() / (REPS * queries.len()) as u32;
    let t1 = Instant::now();
    for _ in 0..REPS {
        for q in &queries {
            std::hint::black_box(pipeline.discover_stage(&lake, std::hint::black_box(q)));
        }
    }
    let budgeted = t1.elapsed() / (REPS * queries.len()) as u32;
    let speedup = probe_all.as_secs_f64() / budgeted.as_secs_f64().max(1e-12);
    println!(
        "bench pipeline/headline: skewed 1k-table discovery stage: probe-all {probe_all:?} vs \
         budgeted default {budgeted:?} ({speedup:.1}x)"
    );
    // Wall-clock ratios are advisory (shared CI runners throttle), so the
    // bar is a loud warning, not an assert — correctness stays gated by
    // the equality checks above. The recorded baseline is ~5x
    // (BENCH_topk.json); sustained readings below 2x mean the routing
    // regressed.
    if speedup < 2.0 {
        eprintln!(
            "WARNING: budgeted stage speedup {speedup:.1}x fell below the 2x bar \
             (baseline ~5x; noisy runner or a routing regression)"
        );
    }
    if let Some(telemetry) = pipeline.telemetry() {
        println!(
            "bench pipeline/telemetry:\n{}",
            telemetry
                .summary()
                .lines()
                .map(|l| format!("  {l}"))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("stage/probe-all-1k", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % queries.len();
            legacy.discover_all(std::hint::black_box(&queries[i]), 10)
        })
    });
    group.bench_function("stage/budgeted-default-1k", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % queries.len();
            pipeline.discover_stage(&lake, std::hint::black_box(&queries[i]))
        })
    });
    group.finish();
}

/// Capped, bound-ranked SANTOS retrieval vs exhaustive scoring on the
/// type-dense 1k-table `SantosWorkload`. Equality (any finite covering cap
/// == exhaustive, byte-for-byte) is asserted for every query before any
/// number is published.
fn bench_santos_cap(c: &mut Criterion) {
    let workload = SantosWorkload {
        tables: 1000,
        queries: 8,
        seed: 53,
        ..SantosWorkload::default()
    };
    let trace = workload.generate();
    let lake = DataLake::from_tables(trace.tables).unwrap();
    let engine = SantosDiscovery::build(&lake, Arc::new(trace.kb), SantosConfig::default());
    let cap = DiscoveryBudget::default().santos_candidates;
    let queries: Vec<TableQuery> = trace
        .queries
        .into_iter()
        .map(|q| TableQuery::with_column(q, 0))
        .collect();

    // Equality gate: a covering finite cap equals the exhaustive oracle.
    let mut exhaustive_scored = 0usize;
    let mut capped_scored = 0usize;
    for q in &queries {
        let (want, ex_stats) = engine.discover_capped(q, 10, usize::MAX);
        let (got, stats) = engine.discover_capped(q, 10, lake.len());
        assert_eq!(
            got,
            want,
            "covering cap diverged from exhaustive on {}",
            q.table.name()
        );
        let (_, default_stats) = engine.discover_capped(q, 10, cap);
        exhaustive_scored += ex_stats.candidates_scored;
        capped_scored += default_stats.candidates_scored.max(1);
        let _ = stats;
    }
    println!(
        "bench santos_cap/headline: type-dense 1k-table lake: exhaustive scores {exhaustive_scored} \
         candidates vs {capped_scored} at default cap {cap} ({:.1}x fewer)",
        exhaustive_scored as f64 / capped_scored as f64
    );

    let mut group = c.benchmark_group("santos_cap");
    group.sample_size(10);
    group.bench_function("query/exhaustive-1k", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % queries.len();
            engine.discover_capped(std::hint::black_box(&queries[i]), 10, usize::MAX)
        })
    });
    group.bench_function("query/default-cap-1k", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % queries.len();
            engine.discover_capped(std::hint::black_box(&queries[i]), 10, cap)
        })
    });
    group.finish();
}

/// A lake with the Zipf-shaped token frequencies of real open-data
/// corpora: 32 *stopword* tokens present in every table (headers, units,
/// boilerplate — posting lists spanning the whole lake), 32 group tokens
/// shared by each 1/50th of the lake, and 64 version tokens shared only
/// by a table's near-duplicate re-publications (every 250th table). An
/// unweighted posting merge drowns in the stopword lists; the cost
/// model's cheapest-first schedule proves them irrelevant and never
/// scans them.
fn zipf_token_lake(tables: usize) -> DataLake {
    let mut out = Vec::with_capacity(tables);
    for t in 0..tables {
        let mut rows: Vec<Vec<Value>> = Vec::with_capacity(128);
        for h in 0..32 {
            rows.push(vec![Value::Text(format!("hub{h}"))]);
        }
        for m in 0..32 {
            rows.push(vec![Value::Text(format!("m{}_{m}", t % 50))]);
        }
        for p in 0..64 {
            rows.push(vec![Value::Text(format!("p{}_{p}", t % 250))]);
        }
        out.push(Table::from_rows(&format!("cost_t{t}"), &["key"], rows).expect("fixed arity"));
    }
    DataLake::from_tables(out).expect("unique names")
}

/// The cost-bounded exact path vs the unplanned full posting merge on
/// mid-size queries (128 tokens — far past the default
/// `exact_fallback_below`, the regime the JOSIE-style cost model opens
/// up), plus the typeless SANTOS posting index vs its full scan on the
/// same Zipf-shaped lake. Output equality — cost model at unlimited
/// budget == full merge, covering cap == full scan, byte-for-byte — is
/// asserted for every query before any number is published, and the
/// measured point is appended to `BENCH_topk.json`.
fn bench_cost_model(c: &mut Criterion) {
    let lake = zipf_token_lake(1000);
    // Sketch bypassed: every query takes the exact posting path, so the
    // race is purely cost model vs full merge. num_perm only pays build
    // cost on this path — keep it minimal.
    let engine = LshEnsembleDiscovery::build(
        &lake,
        LshEnsembleConfig {
            num_perm: 16,
            num_partitions: 4,
            exact_fallback_below: usize::MAX,
            ..LshEnsembleConfig::default()
        },
    );
    let planner = TopKPlanner::new();
    let budget = QueryBudget::unlimited();
    // Each query carries a lake table's full 128-token set, so it has
    // near-duplicate 1.0-containment matches plus a band of
    // exactly-at-threshold group matches — non-trivial top-k output on
    // both sides of the race.
    let queries: Vec<TableQuery> = (0..16)
        .map(|qi| {
            let src = lake.get(&format!("cost_t{}", qi * 61 % 1000)).unwrap();
            let rows: Vec<Vec<Value>> = src.rows().map(|r| vec![r[0].clone()]).collect();
            TableQuery::with_column(
                Table::from_rows(&format!("cost_q{qi}"), &["key"], rows).expect("fixed arity"),
                0,
            )
        })
        .collect();

    // Equality gate + work accounting: the unlimited cost model must
    // reproduce the full merge exactly on every query.
    let mut skipped = 0usize;
    let mut verified = 0usize;
    for q in &queries {
        let (hits, stats) = planner.discover_top_k_with_stats(&engine, q, 10, &budget);
        assert!(
            stats.exact_path,
            "mid-size queries must stay on the exact path"
        );
        assert_eq!(
            hits,
            engine.exact_merge_oracle(q, 10),
            "cost model diverged from the full posting merge on {}",
            q.table.name()
        );
        skipped += stats.postings_skipped;
        verified += stats.candidates_verified;
    }

    // Headline: mean per-query latency, full merge vs cost model,
    // measured once outside the criterion loop.
    const REPS: usize = 30;
    let t0 = Instant::now();
    for _ in 0..REPS {
        for q in &queries {
            std::hint::black_box(engine.exact_merge_oracle(std::hint::black_box(q), 10));
        }
    }
    let full_merge = t0.elapsed() / (REPS * queries.len()) as u32;
    let t1 = Instant::now();
    for _ in 0..REPS {
        for q in &queries {
            std::hint::black_box(planner.discover_top_k(
                &engine,
                std::hint::black_box(q),
                10,
                &budget,
            ));
        }
    }
    let bounded = t1.elapsed() / (REPS * queries.len()) as u32;
    let speedup = full_merge.as_secs_f64() / bounded.as_secs_f64().max(1e-12);
    println!(
        "bench cost_model/headline: mid-size (128-token) exact query on Zipf 1k-table lake: \
         full merge {full_merge:?} vs cost-bounded {bounded:?} ({speedup:.1}x), \
         {skipped} postings skipped / {verified} candidates verified across {} queries",
        queries.len()
    );
    // Correctness is gated by the equality asserts above; the wall-clock
    // ratio stays a loud warning so shared-runner noise cannot flake CI.
    if speedup < 2.0 {
        eprintln!(
            "WARNING: cost-bounded exact path speedup {speedup:.1}x fell below the 2x bar \
             (noisy runner or a cost-model regression)"
        );
    }

    // Typeless SANTOS on the same lake (`v{j}` tokens are unknown to the
    // curated KB): covering cap == full scan, then race the default cap.
    let santos = SantosDiscovery::build(&lake, Arc::new(covid_kb()), SantosConfig::default());
    let cap = DiscoveryBudget::default().santos_candidates;
    let mut scan_scored = 0usize;
    let mut capped_scored = 0usize;
    for q in &queries {
        let (want, scan_stats) = santos.discover_capped(q, 10, usize::MAX);
        assert!(scan_stats.full_scan, "this lake must be KB-typeless");
        let (got, cover_stats) = santos.discover_capped(q, 10, lake.len());
        assert!(
            !cover_stats.full_scan,
            "finite caps must use the posting index"
        );
        assert_eq!(
            got,
            want,
            "typeless covering cap diverged from the full scan on {}",
            q.table.name()
        );
        let (_, cap_stats) = santos.discover_capped(q, 10, cap);
        scan_scored += scan_stats.candidates_scored;
        capped_scored += cap_stats.candidates_scored.max(1);
    }
    let t2 = Instant::now();
    for _ in 0..REPS {
        for q in &queries {
            std::hint::black_box(santos.discover_capped(std::hint::black_box(q), 10, usize::MAX));
        }
    }
    let full_scan = t2.elapsed() / (REPS * queries.len()) as u32;
    let t3 = Instant::now();
    for _ in 0..REPS {
        for q in &queries {
            std::hint::black_box(santos.discover_capped(std::hint::black_box(q), 10, cap));
        }
    }
    let capped = t3.elapsed() / (REPS * queries.len()) as u32;
    println!(
        "bench cost_model/typeless: santos full scan {full_scan:?} ({scan_scored} scored) vs \
         default cap {cap} {capped:?} ({capped_scored} scored, {:.1}x fewer)",
        scan_scored as f64 / capped_scored as f64
    );

    let point = format!(
        "{{ \"pr\": 9, \"group\": \"cost_model\", \"tables\": {}, \"queries\": {}, \
         \"query_rows\": 128, \"host_cpus\": {}, \"exact\": {{ \"full_merge_us\": {:.1}, \
         \"cost_bounded_us\": {:.1}, \"speedup\": {:.2}, \"postings_skipped\": {skipped}, \
         \"verified\": {verified} }}, \"typeless\": {{ \"full_scan_us\": {:.1}, \
         \"default_cap_us\": {:.1}, \"scored_full\": {scan_scored}, \
         \"scored_capped\": {capped_scored} }} }}",
        lake.len(),
        queries.len(),
        record::host_cpus(),
        full_merge.as_secs_f64() * 1e6,
        bounded.as_secs_f64() * 1e6,
        speedup,
        full_scan.as_secs_f64() * 1e6,
        capped.as_secs_f64() * 1e6,
    );
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_topk.json");
    record::append_point(&path, "topk", &point).expect("append BENCH_topk.json");

    let mut group = c.benchmark_group("cost_model");
    group.sample_size(10);
    group.bench_function("exact/full-merge-1k", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % queries.len();
            engine.exact_merge_oracle(std::hint::black_box(&queries[i]), 10)
        })
    });
    group.bench_function("exact/cost-bounded-1k", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % queries.len();
            planner.discover_top_k(&engine, std::hint::black_box(&queries[i]), 10, &budget)
        })
    });
    group.bench_function("typeless/full-scan-1k", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % queries.len();
            santos.discover_capped(std::hint::black_box(&queries[i]), 10, usize::MAX)
        })
    });
    group.bench_function("typeless/default-cap-1k", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % queries.len();
            santos.discover_capped(std::hint::black_box(&queries[i]), 10, cap)
        })
    });
    group.finish();
}

/// The sharded fan-out vs the single index on a 100k-table streamed lake.
/// Output equality (sharded == single-shard, byte-for-byte, unlimited
/// budget, sketch-free config) is asserted for every query and every shard
/// count before any number is published. The headline metric is the
/// *per-shard work drop*: the streamed queries are KB-typeless, so the
/// SANTOS leg full-scans, and each shard scores exactly its slot stripe —
/// max per-shard `candidates_scored` must fall near-linearly in N. Wall
/// clock is recorded, not asserted: the bench host may have a single CPU
/// (`host_cpus` lands in `BENCH_topk.json`), and fan-out cannot beat the
/// single index without real cores.
fn bench_sharded(c: &mut Criterion) {
    let tables = std::env::var("DIALITE_SHARDED_TABLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);
    let spec = StreamedLakeWorkload {
        tables,
        ..StreamedLakeWorkload::default()
    };
    let t0 = Instant::now();
    let lake = spec.lake();
    let streamed = t0.elapsed();
    let queries: Vec<TableQuery> = spec
        .queries()
        .into_iter()
        .map(|q| TableQuery::with_column(q, 0))
        .collect();
    let kb = Arc::new(covid_kb());
    // Sketch-free: the LSH sketch path is not guaranteed identical across
    // shardings, so the equality gate (like the shard oracle tests) pins
    // the exact posting-list path. num_perm is irrelevant on that path —
    // keep it minimal so the 100k-table builds stay cheap.
    let config = LakeIndexConfig {
        santos: SantosConfig::default(),
        lshe: LshEnsembleConfig {
            num_perm: 16,
            num_partitions: 4,
            exact_fallback_below: usize::MAX,
            ..LshEnsembleConfig::default()
        },
        metadata: None,
    };
    let budget = DiscoveryBudget::unlimited();

    let t1 = Instant::now();
    let single = ShardedLakeIndex::build(&lake, kb.clone(), config.clone(), 1);
    let build_single = t1.elapsed();
    single.reset_telemetry();
    let t2 = Instant::now();
    let baseline: Vec<_> = queries
        .iter()
        .map(|q| single.discover_all_budgeted(q, 10, &budget))
        .collect();
    let query_single = t2.elapsed() / queries.len() as u32;
    let single_window = single.telemetry();
    let single_scored = single_window.santos.candidates_scored;
    let single_verified = single_window.topk.candidates_verified;
    assert!(
        single_window.santos.full_scans as usize >= queries.len(),
        "streamed tokens must be KB-typeless so the scored-work metric is the stripe size"
    );
    println!(
        "bench sharded/headline: {} tables streamed in {streamed:?}; single-shard build \
         {build_single:?}, query {query_single:?}, santos scored {single_scored}, joinable \
         verified {single_verified}",
        lake.len()
    );

    let mut points = Vec::new();
    for shards in [2usize, 4, 8] {
        let t = Instant::now();
        let sharded = ShardedLakeIndex::build(&lake, kb.clone(), config.clone(), shards);
        let build = t.elapsed();
        sharded.reset_telemetry();
        let t = Instant::now();
        for (q, want) in queries.iter().zip(&baseline) {
            assert_eq!(
                &sharded.discover_all_budgeted(q, 10, &budget),
                want,
                "{shards}-shard fan-out diverged from the single index on {}",
                q.table.name()
            );
        }
        let query = t.elapsed() / queries.len() as u32;
        let per_shard = sharded.telemetry_per_shard();
        let max_scored = per_shard
            .iter()
            .map(|w| w.santos.candidates_scored)
            .max()
            .unwrap_or(0);
        let max_verified = per_shard
            .iter()
            .map(|w| w.topk.candidates_verified)
            .max()
            .unwrap_or(0);
        // Slot stripes partition the lake exactly, so the full-scanning
        // SANTOS leg drops perfectly linearly; 10% slack absorbs stripe
        // rounding on non-dividing table counts.
        assert!(
            max_scored <= single_scored / shards as u64 + single_scored / 10,
            "per-shard santos work did not drop near-linearly at {shards} shards: \
             max {max_scored} vs single {single_scored}"
        );
        let merged = sharded.telemetry();
        assert_eq!(
            merged.santos.candidates_scored,
            per_shard
                .iter()
                .map(|w| w.santos.candidates_scored)
                .sum::<u64>(),
            "merged telemetry out of lockstep with per-shard sums"
        );
        println!(
            "bench sharded/{shards}-shards: build {build:?}, query {query:?}, max per-shard \
             scored {max_scored} ({:.2}x drop), max per-shard verified {max_verified} \
             ({:.2}x drop)",
            single_scored as f64 / max_scored.max(1) as f64,
            single_verified as f64 / max_verified.max(1) as f64,
        );
        points.push(format!(
            "{{ \"shards\": {shards}, \"build_ms\": {:.1}, \"query_us\": {:.1}, \
             \"max_shard_scored\": {max_scored}, \"max_shard_verified\": {max_verified} }}",
            build.as_secs_f64() * 1e3,
            query.as_secs_f64() * 1e6,
        ));
    }
    let point = format!(
        "{{ \"pr\": 7, \"group\": \"sharded\", \"tables\": {}, \"queries\": {}, \
         \"host_cpus\": {}, \"single\": {{ \"build_ms\": {:.1}, \"query_us\": {:.1}, \
         \"scored\": {single_scored}, \"verified\": {single_verified} }}, \"fanout\": [ {} ] }}",
        lake.len(),
        queries.len(),
        record::host_cpus(),
        build_single.as_secs_f64() * 1e3,
        query_single.as_secs_f64() * 1e6,
        points.join(", "),
    );
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_topk.json");
    record::append_point(&path, "topk", &point).expect("append BENCH_topk.json");

    let four = ShardedLakeIndex::build(&lake, kb, config, 4);
    let mut group = c.benchmark_group("sharded");
    group.sample_size(10);
    group.bench_function("query/1-shard-100k", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % queries.len();
            single.discover_all_budgeted(std::hint::black_box(&queries[i]), 10, &budget)
        })
    });
    group.bench_function("query/4-shards-100k", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % queries.len();
            four.discover_all_budgeted(std::hint::black_box(&queries[i]), 10, &budget)
        })
    });
    group.finish();
}

/// Corpus-scale heterogeneous lake (Zipf sizes, dirty cells, topical
/// header clusters): token-mode discovery (typeless SANTOS under its
/// candidate cap) vs metadata-mode discovery (header matching, capped and
/// exhaustive) on the same 100k-table lake. Retrieval quality is computed
/// against the generator's cluster ground truth and published alongside
/// latency; before any number lands in the trajectory, the capped
/// metadata path is gated byte-identical to the full header scan at a
/// covering cap — the same contract `tests/metadata_oracle.rs` pins.
fn bench_hetero(c: &mut Criterion) {
    let tables = std::env::var("DIALITE_HETERO_TABLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);
    let spec = HeterogeneousLakeWorkload {
        tables,
        ..HeterogeneousLakeWorkload::default()
    };
    let t0 = Instant::now();
    let lake = spec.lake();
    let streamed = t0.elapsed();

    let t1 = Instant::now();
    let metadata = MetadataDiscovery::build(&lake, MetadataConfig::default());
    let build_metadata = t1.elapsed();
    let kb = Arc::new(covid_kb());
    let t2 = Instant::now();
    let santos = SantosDiscovery::build(&lake, kb, SantosConfig::default());
    let build_santos = t2.elapsed();
    println!(
        "bench hetero/headline: {} tables streamed in {streamed:?}; santos build \
         {build_santos:?}, metadata build {build_metadata:?}",
        lake.len()
    );

    let cluster_of_hit = |name: &str| -> Option<usize> {
        name.strip_prefix("hetero_t")
            .and_then(|i| i.parse::<usize>().ok())
            .map(|i| spec.cluster_of(i))
    };

    // Token mode: value queries drawn from cluster anchor columns, k=10
    // through the capped typeless path. Quality is the fraction of hits
    // whose primary cluster matches the query's source cluster.
    let stride = (spec.tables / spec.queries.max(1)).max(1);
    let token_queries: Vec<(usize, TableQuery)> = spec
        .queries()
        .into_iter()
        .enumerate()
        .map(|(q, t)| {
            let source = (q * stride) % spec.tables.max(1);
            (spec.cluster_of(source), TableQuery::with_column(t, 0))
        })
        .collect();
    let mut token_hits = 0usize;
    let mut token_total = 0usize;
    let t3 = Instant::now();
    for (cluster, query) in &token_queries {
        let (hits, _) = santos.discover_capped(query, 10, 4096);
        token_total += hits.len();
        token_hits += hits
            .iter()
            .filter(|d| cluster_of_hit(&d.table) == Some(*cluster))
            .count();
    }
    let token_query_us = t3.elapsed().as_secs_f64() * 1e6 / token_queries.len() as f64;
    let token_recall = token_hits as f64 / token_total.max(1) as f64;

    // Metadata mode: header queries against each cluster's shared header
    // vocabulary. Ground truth: every table whose anchor header the query
    // names must be retrievable; recall is measured at a k covering them.
    let header_queries: Vec<TableQuery> = spec
        .header_queries()
        .into_iter()
        .map(TableQuery::new)
        .collect();
    let meta_budget = DiscoveryBudget::default().metadata_candidates;
    let mut meta_recall_sum = 0.0f64;
    let mut meta_measured = 0usize;
    let mut full_us = 0.0f64;
    let mut capped_us = 0.0f64;
    for query in &header_queries {
        let q_headers: std::collections::HashSet<&str> = query
            .table
            .schema()
            .columns()
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        let relevant: Vec<&str> = lake
            .tables()
            .filter(|t| q_headers.contains(t.schema().column(0).name.as_str()))
            .map(|t| t.name())
            .collect();
        let k = relevant.len().max(10);

        let t = Instant::now();
        let (full, stats) = metadata.discover_capped(query, k, usize::MAX);
        full_us += t.elapsed().as_secs_f64() * 1e6;
        assert!(stats.full_scan, "unlimited cap must full-scan");
        let t = Instant::now();
        let (_capped10, _) = metadata.discover_capped(query, 10, meta_budget);
        capped_us += t.elapsed().as_secs_f64() * 1e6;

        // Equality gate: a covering cap must reproduce the exhaustive
        // output byte-for-byte, or the trajectory gets no point.
        let (covering, cstats) = metadata.discover_capped(query, k, metadata.len().max(1));
        assert!(!cstats.cap_hit, "covering cap reported cap_hit");
        assert_eq!(
            covering, full,
            "covering-cap metadata retrieval diverged from the full header scan"
        );

        if !relevant.is_empty() {
            let hit_names: std::collections::HashSet<&str> =
                full.iter().map(|d| d.table.as_str()).collect();
            let recalled = relevant.iter().filter(|r| hit_names.contains(*r)).count();
            meta_recall_sum += recalled as f64 / relevant.len() as f64;
            meta_measured += 1;
        }
    }
    let meta_recall = meta_recall_sum / meta_measured.max(1) as f64;
    full_us /= header_queries.len() as f64;
    capped_us /= header_queries.len() as f64;
    println!(
        "bench hetero/modes: token query {token_query_us:.1}us recall {token_recall:.3}; \
         metadata full-scan {full_us:.1}us, capped {capped_us:.1}us, recall {meta_recall:.3} \
         over {meta_measured} queries"
    );

    let point = format!(
        "{{ \"pr\": 10, \"group\": \"hetero\", \"tables\": {}, \"clusters\": {}, \
         \"host_cpus\": {}, \"build\": {{ \"santos_ms\": {:.1}, \"metadata_ms\": {:.1} }}, \
         \"token\": {{ \"query_us\": {token_query_us:.1}, \"recall\": {token_recall:.3} }}, \
         \"metadata\": {{ \"full_scan_us\": {full_us:.1}, \"capped_us\": {capped_us:.1}, \
         \"recall\": {meta_recall:.3} }} }}",
        lake.len(),
        spec.clusters,
        record::host_cpus(),
        build_santos.as_secs_f64() * 1e3,
        build_metadata.as_secs_f64() * 1e3,
    );
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_topk.json");
    record::append_point(&path, "topk", &point).expect("append BENCH_topk.json");

    let mut group = c.benchmark_group("hetero");
    group.sample_size(10);
    group.bench_function("token/santos-cap-100k", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % token_queries.len();
            santos.discover_capped(std::hint::black_box(&token_queries[i].1), 10, 4096)
        })
    });
    group.bench_function("metadata/capped-100k", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % header_queries.len();
            metadata.discover_capped(std::hint::black_box(&header_queries[i]), 10, meta_budget)
        })
    });
    group.bench_function("metadata/full-scan-100k", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % header_queries.len();
            metadata.discover_capped(std::hint::black_box(&header_queries[i]), 10, usize::MAX)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_discovery,
    bench_churn,
    bench_topk,
    bench_pipeline_stage,
    bench_santos_cap,
    bench_cost_model,
    bench_sharded,
    bench_hetero
);
criterion_main!(benches);
