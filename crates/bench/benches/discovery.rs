//! Criterion bench behind experiment E7: discovery index build and query
//! latency — plus the lake-churn comparison (incremental single-table
//! maintenance vs full index rebuild) behind the `LakeIndex` subsystem,
//! and the `topk` group racing the budgeted `TopKPlanner` against the
//! probe-all query path on a skewed 1k-table lake.

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use dialite_datagen::lake::{LakeSpec, SyntheticLake};
use dialite_datagen::workloads::{ChurnWorkload, TopKWorkload};
use dialite_discovery::{
    Discovery, ExactOverlapDiscovery, LshEnsembleConfig, LshEnsembleDiscovery, QueryBudget,
    SantosConfig, SantosDiscovery, TableQuery, TopKPlanner,
};
use dialite_table::{DataLake, Table, Value};

fn bench_discovery(c: &mut Criterion) {
    let synth = SyntheticLake::generate(&LakeSpec {
        universes: 6,
        fragments_per_universe: 5,
        rows_per_universe: 80,
        categorical_cols: 3,
        numeric_cols: 1,
        null_rate: 0.05,
        value_dirt_rate: 0.0,
        scramble_headers: true,
        seed: 8,
    });
    let kb = Arc::new(synth.truth.kb.clone());
    let query_table = synth.lake.tables().next().unwrap().as_ref().clone();
    let query = TableQuery::with_column(query_table, 0);

    let mut group = c.benchmark_group("discovery");
    group.sample_size(10);

    group.bench_function("build/santos", |b| {
        b.iter(|| SantosDiscovery::build(&synth.lake, kb.clone(), SantosConfig::default()))
    });
    group.bench_function("build/lsh-ensemble", |b| {
        b.iter(|| LshEnsembleDiscovery::build(&synth.lake, LshEnsembleConfig::default()))
    });
    group.bench_function("build/exact-overlap", |b| {
        b.iter(|| ExactOverlapDiscovery::build(&synth.lake, true))
    });

    let santos = SantosDiscovery::build(&synth.lake, kb.clone(), SantosConfig::default());
    let lshe = LshEnsembleDiscovery::build(&synth.lake, LshEnsembleConfig::default());
    let overlap = ExactOverlapDiscovery::build(&synth.lake, true);
    group.bench_function("query/santos", |b| {
        b.iter(|| santos.discover(std::hint::black_box(&query), 8))
    });
    group.bench_function("query/lsh-ensemble", |b| {
        b.iter(|| lshe.discover(std::hint::black_box(&query), 8))
    });
    group.bench_function("query/exact-overlap", |b| {
        b.iter(|| overlap.discover(std::hint::black_box(&query), 8))
    });
    group.finish();
}

/// A table of fresh tokens no other lake table shares, so a query over its
/// keys has exactly one (decisive, containment-1.0) true match — keeping
/// the incremental-vs-rebuild equality check away from the LSH borderline.
fn newcomer_table() -> Table {
    let rows: Vec<Vec<Value>> = (0..24)
        .map(|i| vec![Value::Text(format!("fresh{i}")), Value::Int(i)])
        .collect();
    Table::from_rows("newcomer", &["key", "val"], rows).expect("fixed arity")
}

/// Single-table churn into a 1k-table lake: incremental `upsert_table` vs
/// a full `build()` of the final lake. Output equality is asserted here —
/// the bench refuses to publish numbers for diverging indexes.
fn bench_churn(c: &mut Criterion) {
    let trace = ChurnWorkload {
        initial_tables: 1000,
        rows_per_table: 24,
        vocab: 20_000,
        ops: 0,
        seed: 41,
    }
    .generate();
    let mut lake = DataLake::from_tables(trace.initial).unwrap();
    let config = LshEnsembleConfig::default();

    let mut engine = LshEnsembleDiscovery::build(&lake, config.clone());
    let newcomer = newcomer_table();
    let slot = lake.add_table(newcomer.clone()).unwrap();
    let query = TableQuery::with_column(
        Table::from_rows(
            "churn_probe",
            &["key"],
            (0..24)
                .map(|i| vec![Value::Text(format!("fresh{i}"))])
                .collect(),
        )
        .unwrap(),
        0,
    );

    // Headline numbers + equality gate, measured once outside the
    // criterion loop so the speedup is printed as a single line.
    let t0 = Instant::now();
    engine.upsert_table(slot, &newcomer);
    let incremental = t0.elapsed();
    let t1 = Instant::now();
    let fresh = LshEnsembleDiscovery::build(&lake, config.clone());
    let rebuild = t1.elapsed();
    let inc_hits = engine.discover(&query, 8);
    let fresh_hits = fresh.discover(&query, 8);
    assert_eq!(
        inc_hits, fresh_hits,
        "incremental index diverged from full rebuild"
    );
    assert_eq!(inc_hits[0].table, "newcomer");
    println!(
        "bench churn/headline: add 1 table into 1k-table lake: incremental {:?} vs rebuild {:?} ({:.1}x)",
        incremental,
        rebuild,
        rebuild.as_secs_f64() / incremental.as_secs_f64().max(1e-9),
    );

    let mut group = c.benchmark_group("churn");
    group.sample_size(10);
    // Query first: `engine` is in its honest post-one-churn state here.
    // The upsert loop below re-stages the same slot thousands of times,
    // piling up dead postings no real workload would accumulate between
    // rebalances — querying after it would publish a pathological number.
    group.bench_function("query/after-churn", |b| {
        b.iter(|| engine.discover(std::hint::black_box(&query), 8))
    });
    group.bench_function("incremental/upsert-one-of-1k", |b| {
        b.iter(|| engine.upsert_table(slot, std::hint::black_box(&newcomer)))
    });
    group.bench_function("rebuild/full-build-1k", |b| {
        b.iter(|| LshEnsembleDiscovery::build(std::hint::black_box(&lake), config.clone()))
    });
    group.finish();
}

/// The budgeted top-k planner vs the PR 3 probe-all query path, on the
/// skewed 1k-table workload where scheduling actually matters: a few hub
/// tables contain the queries, a long tail of small tables fills low-bound
/// partitions the planner proves irrelevant without probing. Output
/// equality (planner == probe-all at unlimited budget) is asserted for
/// every query before any number is published.
fn bench_topk(c: &mut Criterion) {
    let trace = TopKWorkload {
        tables: 1000,
        hub_tables: 4,
        hub_rows: 256,
        tail_rows: 12,
        vocab: 40_000,
        queries: 16,
        query_rows: 128,
        seed: 47,
    }
    .generate();
    let lake = DataLake::from_tables(trace.tables).unwrap();
    let engine = LshEnsembleDiscovery::build(&lake, LshEnsembleConfig::default());
    let queries: Vec<TableQuery> = trace
        .queries
        .into_iter()
        .map(|q| TableQuery::with_column(q, 0))
        .collect();
    let budget = QueryBudget::unlimited();
    let planner = TopKPlanner::new();

    // Equality gate (also warms the signature cache for every query).
    for q in &queries {
        assert_eq!(
            planner.discover_top_k(&engine, q, 10, &budget),
            engine.discover(q, 10),
            "planner diverged from probe-all on {}",
            q.table.name()
        );
    }

    // Headline: mean per-query latency over the whole query set, probe-all
    // vs the warm-cache planner, measured once outside the criterion loop.
    const REPS: usize = 30;
    let t0 = Instant::now();
    for _ in 0..REPS {
        for q in &queries {
            std::hint::black_box(engine.discover(std::hint::black_box(q), 10));
        }
    }
    let probe_all = t0.elapsed() / (REPS * queries.len()) as u32;
    let t1 = Instant::now();
    for _ in 0..REPS {
        for q in &queries {
            std::hint::black_box(planner.discover_top_k(
                &engine,
                std::hint::black_box(q),
                10,
                &budget,
            ));
        }
    }
    let planned = t1.elapsed() / (REPS * queries.len()) as u32;
    println!(
        "bench topk/headline: skewed 1k-table query: probe-all {:?} vs planner (warm cache) {:?} ({:.1}x)",
        probe_all,
        planned,
        probe_all.as_secs_f64() / planned.as_secs_f64().max(1e-12),
    );

    let mut group = c.benchmark_group("topk");
    group.sample_size(10);
    group.bench_function("probe-all/skewed-1k", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % queries.len();
            engine.discover(std::hint::black_box(&queries[i]), 10)
        })
    });
    group.bench_function("planner/warm-cache", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % queries.len();
            planner.discover_top_k(&engine, std::hint::black_box(&queries[i]), 10, &budget)
        })
    });
    group.bench_function("planner/cold-cache", |b| {
        let cold = TopKPlanner::with_cache_capacity(0);
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % queries.len();
            cold.discover_top_k(&engine, std::hint::black_box(&queries[i]), 10, &budget)
        })
    });
    group.bench_function("planner/budget-2-partitions", |b| {
        let capped = QueryBudget::unlimited().with_max_partitions(2);
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % queries.len();
            planner.discover_top_k(&engine, std::hint::black_box(&queries[i]), 10, &capped)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_discovery, bench_churn, bench_topk);
criterion_main!(benches);
