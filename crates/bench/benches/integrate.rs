//! Criterion bench for the dictionary-encoded integration core: the
//! interned `AliteFd` against a faithful re-implementation of the seed
//! engine (clone-heavy `(u32, Value)` index keys and `Vec<Value>` content
//! dedup) on the datagen lake workload. The point is to *measure* the
//! interning speedup, not assert it.

use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dialite_align::Alignment;
use dialite_datagen::workloads::FdWorkload;
use dialite_integrate::{AliteFd, Integrator, ParallelFd};
use dialite_table::{NullKind, Table, Value};

// ---------------------------------------------------------------------------
// Seed baseline: the pre-interning ALITE engine, verbatim semantics.
// Every index probe clones a `Value` to build its `(u32, Value)` key and
// content dedup hashes whole `Vec<Value>` rows — exactly the costs the
// dictionary-encoded engine removes.
// ---------------------------------------------------------------------------

#[derive(Clone)]
struct SeedTuple {
    values: Vec<Value>,
    tids: BTreeSet<(u32, u32)>,
}

impl SeedTuple {
    fn consistent(&self, other: &SeedTuple) -> bool {
        self.values
            .iter()
            .zip(&other.values)
            .all(|(a, b)| a.is_null() || b.is_null() || a == b)
    }

    fn merge(&self, other: &SeedTuple) -> SeedTuple {
        let values = self
            .values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| match (a.is_null(), b.is_null()) {
                (false, _) => a.clone(),
                (true, false) => b.clone(),
                (true, true) => {
                    if matches!(a, Value::Null(NullKind::Missing))
                        || matches!(b, Value::Null(NullKind::Missing))
                    {
                        Value::null_missing()
                    } else {
                        Value::null_produced()
                    }
                }
            })
            .collect();
        let tids = self.tids.union(&other.tids).copied().collect();
        SeedTuple { values, tids }
    }

    fn subsumes(&self, other: &SeedTuple) -> bool {
        other
            .values
            .iter()
            .zip(&self.values)
            .all(|(o, s)| o.is_null() || o == s)
    }

    fn non_null_count(&self) -> usize {
        self.values.iter().filter(|v| !v.is_null()).count()
    }
}

fn seed_outer_union(tables: &[&Table], alignment: &Alignment) -> (Vec<String>, Vec<SeedTuple>) {
    let mut order: Vec<u32> = Vec::with_capacity(alignment.num_ids());
    let mut seen = vec![false; alignment.num_ids()];
    for (t, table) in tables.iter().enumerate() {
        for c in 0..table.column_count() {
            let id = alignment.id_of(t, c);
            if !seen[id as usize] {
                seen[id as usize] = true;
                order.push(id);
            }
        }
    }
    let mut slot_of = vec![usize::MAX; alignment.num_ids()];
    for (slot, &id) in order.iter().enumerate() {
        slot_of[id as usize] = slot;
    }
    let names: Vec<String> = order
        .iter()
        .map(|&id| alignment.name_of(id).to_string())
        .collect();
    let width = order.len();
    let mut tuples = Vec::new();
    for (t, table) in tables.iter().enumerate() {
        for (r, row) in table.rows().enumerate() {
            let mut values = vec![Value::null_produced(); width];
            for (c, v) in row.iter().enumerate() {
                values[slot_of[alignment.id_of(t, c) as usize]] = v.clone();
            }
            let mut tids = BTreeSet::new();
            tids.insert((t as u32, r as u32));
            tuples.push(SeedTuple { values, tids });
        }
    }
    (names, tuples)
}

fn seed_insert(
    store: &mut Vec<SeedTuple>,
    by_content: &mut HashMap<Vec<Value>, usize>,
    t: SeedTuple,
) {
    match by_content.get(&t.values) {
        Some(&idx) => {
            let existing = &mut store[idx];
            if (t.tids.len(), &t.tids) < (existing.tids.len(), &existing.tids) {
                existing.tids = t.tids;
            }
        }
        None => {
            by_content.insert(t.values.clone(), store.len());
            store.push(t);
        }
    }
}

fn seed_remove_subsumed(tuples: Vec<SeedTuple>) -> Vec<SeedTuple> {
    let mut tuples = tuples;
    tuples.sort_by(|a, b| {
        b.non_null_count()
            .cmp(&a.non_null_count())
            .then_with(|| a.values.cmp(&b.values))
    });
    let mut kept: Vec<SeedTuple> = Vec::with_capacity(tuples.len());
    let mut index: HashMap<(u32, Value), Vec<usize>> = HashMap::new();
    for t in tuples {
        let first_non_null = t
            .values
            .iter()
            .enumerate()
            .find(|(_, v)| !v.is_null())
            .map(|(c, v)| (c as u32, v.clone()));
        let subsumed = match &first_non_null {
            Some(key) => index
                .get(key)
                .map(|cands| cands.iter().any(|&k| kept[k].subsumes(&t)))
                .unwrap_or(false),
            None => !kept.is_empty(),
        };
        if subsumed {
            continue;
        }
        let idx = kept.len();
        for (c, v) in t.values.iter().enumerate() {
            if !v.is_null() {
                index.entry((c as u32, v.clone())).or_default().push(idx);
            }
        }
        kept.push(t);
    }
    kept
}

/// The seed `AliteFd::integrate`, boundary included (sorted result table).
fn seed_alite_fd(tables: &[&Table], alignment: &Alignment) -> Table {
    let (names, base) = seed_outer_union(tables, alignment);
    let mut store: Vec<SeedTuple> = Vec::with_capacity(base.len());
    let mut by_content: HashMap<Vec<Value>, usize> = HashMap::new();
    for t in base {
        seed_insert(&mut store, &mut by_content, t);
    }
    let mut index: HashMap<(u32, Value), Vec<u32>> = HashMap::new();
    let index_tuple =
        |index: &mut HashMap<(u32, Value), Vec<u32>>, store: &[SeedTuple], i: usize| {
            for (c, v) in store[i].values.iter().enumerate() {
                if !v.is_null() {
                    index
                        .entry((c as u32, v.clone()))
                        .or_default()
                        .push(i as u32);
                }
            }
        };
    for i in 0..store.len() {
        index_tuple(&mut index, &store, i);
    }
    let mut tried: HashSet<(u32, u32)> = HashSet::new();
    let mut work: VecDeque<u32> = (0..store.len() as u32).collect();
    while let Some(i) = work.pop_front() {
        let mut candidates: Vec<u32> = Vec::new();
        for (c, v) in store[i as usize].values.iter().enumerate() {
            if v.is_null() {
                continue;
            }
            if let Some(post) = index.get(&(c as u32, v.clone())) {
                candidates.extend(post.iter().copied());
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        for j in candidates {
            if j == i {
                continue;
            }
            let key = (i.min(j), i.max(j));
            if !tried.insert(key) {
                continue;
            }
            if store[i as usize].consistent(&store[j as usize]) {
                let merged = store[i as usize].merge(&store[j as usize]);
                let before = store.len();
                seed_insert(&mut store, &mut by_content, merged);
                if store.len() > before {
                    let new_idx = store.len() - 1;
                    index_tuple(&mut index, &store, new_idx);
                    work.push_back(new_idx as u32);
                }
            }
        }
    }
    let mut tuples = seed_remove_subsumed(store);
    tuples.sort_by(|a, b| a.values.cmp(&b.values).then_with(|| a.tids.cmp(&b.tids)));
    let mut table = Table::new("FD(seed)", &names).expect("unique integration IDs");
    for t in tuples {
        table.push_row(t.values).expect("schema arity");
    }
    table.infer_types();
    table
}

// ---------------------------------------------------------------------------
// The bench proper.
// ---------------------------------------------------------------------------

fn bench_interned_vs_seed(c: &mut Criterion) {
    let mut group = c.benchmark_group("integrate");
    group.sample_size(10);
    for rows in [100usize, 300, 600] {
        let tables = FdWorkload {
            tables: 4,
            rows,
            key_domain: rows * 2,
            null_rate: 0.1,
            seed: 3,
        }
        .generate();
        let refs: Vec<&Table> = tables.iter().collect();
        let al = Alignment::by_headers(&refs);

        // Sanity: both implementations compute the same FD before we race
        // them — a fast wrong answer would be worthless.
        let interned = AliteFd::default()
            .integrate(&refs, &al)
            .expect("within budget");
        let seed = seed_alite_fd(&refs, &al);
        assert!(
            interned
                .table()
                .same_content(&seed.renamed(interned.table().name())),
            "seed baseline and interned engine disagree at rows={rows}"
        );

        group.bench_with_input(BenchmarkId::new("seed-alite", rows), &rows, |b, _| {
            b.iter(|| seed_alite_fd(std::hint::black_box(&refs), &al))
        });
        group.bench_with_input(BenchmarkId::new("interned-alite", rows), &rows, |b, _| {
            b.iter(|| {
                AliteFd::default()
                    .integrate(std::hint::black_box(&refs), &al)
                    .expect("within budget")
            })
        });
        group.bench_with_input(
            BenchmarkId::new("interned-parallel", rows),
            &rows,
            |b, _| {
                b.iter(|| {
                    ParallelFd::default()
                        .integrate(std::hint::black_box(&refs), &al)
                        .expect("within budget")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_interned_vs_seed);
criterion_main!(benches);
