//! Criterion bench for the sketching substrate: MinHash signature
//! generation and LSH Ensemble queries (the per-partition parameter-tuning
//! ablation of DESIGN.md §5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dialite_minhash::{LshEnsembleBuilder, MinHasher};

fn tokens(n: usize, prefix: &str) -> Vec<String> {
    (0..n).map(|i| format!("{prefix}{i}")).collect()
}

fn bench_minhash(c: &mut Criterion) {
    let mut group = c.benchmark_group("minhash");
    group.sample_size(20);

    for set_size in [100usize, 1000, 10_000] {
        let toks = tokens(set_size, "v");
        let hasher = MinHasher::new(128, 1);
        group.bench_with_input(
            BenchmarkId::new("signature-128", set_size),
            &set_size,
            |b, _| b.iter(|| hasher.signature(toks.iter().map(String::as_str))),
        );
    }

    // Ensemble query over 512 indexed domains, with 1 vs 8 partitions
    // (the single-partition configuration is the no-partitioning ablation).
    for partitions in [1usize, 8] {
        let mut builder = LshEnsembleBuilder::new(128, 2);
        for d in 0..512 {
            let size = 20 + (d % 50) * 10;
            let toks = tokens(size, &format!("d{d}_"));
            builder.insert_tokens(format!("dom{d}"), toks.iter().map(String::as_str));
        }
        let hasher = builder.hasher().clone();
        let index = builder.build(partitions);
        let q = tokens(60, "d7_");
        let sig = hasher.signature(q.iter().map(String::as_str));
        group.bench_with_input(
            BenchmarkId::new("ensemble-query", partitions),
            &partitions,
            |b, _| b.iter(|| index.query(std::hint::black_box(&sig), q.len(), 0.5)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_minhash);
criterion_main!(benches);
