//! Property-based tests for analytics and entity resolution.

use dialite_analyze::agg::{Aggregate, GroupBy};
use dialite_analyze::er::pairwise_f1;
use dialite_analyze::{pearson, EntityResolver, ErConfig, Gazetteer};
use dialite_table::{Table, Value};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        2 => (0i64..6).prop_map(Value::Int),
        2 => "[a-c]{1,3}".prop_map(Value::Text),
        1 => Just(Value::null_missing()),
    ]
}

fn arb_table() -> impl Strategy<Value = Table> {
    prop::collection::vec(prop::collection::vec(arb_value(), 3), 0..15)
        .prop_map(|rows| Table::from_rows("t", &["g", "x", "y"], rows).expect("fixed arity"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn groupby_counts_partition_the_table(t in arb_table()) {
        let out = GroupBy::new("g")
            .aggregate("x", Aggregate::Count)
            .run(&t)
            .unwrap();
        // Counts of non-null x per group never exceed group sizes, and the
        // number of groups equals the number of distinct keys (plus a null
        // group when null keys exist).
        let nulls = t.column_values(0).filter(|v| v.is_null()).count();
        let distinct = t.column_token_set(0).len() + usize::from(nulls > 0);
        prop_assert_eq!(out.row_count(), distinct);
        let total: i64 = out
            .rows()
            .filter_map(|r| r[1].as_int())
            .sum();
        let non_null_x = t.column_values(1).filter(|v| !v.is_null()).count() as i64;
        prop_assert_eq!(total, non_null_x);
    }

    #[test]
    fn groupby_min_le_max(t in arb_table()) {
        let out = GroupBy::new("g")
            .aggregate("x", Aggregate::Min)
            .aggregate("x", Aggregate::Max)
            .run(&t)
            .unwrap();
        for row in out.rows() {
            if !row[1].is_null() && !row[2].is_null() {
                prop_assert!(row[1] <= row[2]);
            }
        }
    }

    #[test]
    fn pearson_is_symmetric_and_bounded(
        pairs in prop::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 0..20),
    ) {
        let fwd = pearson(&pairs);
        let swapped: Vec<(f64, f64)> = pairs.iter().map(|&(x, y)| (y, x)).collect();
        let bwd = pearson(&swapped);
        match (fwd, bwd) {
            (Some(a), Some(b)) => {
                prop_assert!((a - b).abs() < 1e-9);
                prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&a));
            }
            (None, None) => {}
            _ => prop_assert!(false, "symmetry of definedness violated"),
        }
    }

    #[test]
    fn pearson_invariant_under_affine_transform(
        pairs in prop::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 3..15),
        a in 0.5f64..5.0,
        b in -10.0f64..10.0,
    ) {
        if let Some(r) = pearson(&pairs) {
            let scaled: Vec<(f64, f64)> = pairs.iter().map(|&(x, y)| (a * x + b, y)).collect();
            if let Some(r2) = pearson(&scaled) {
                prop_assert!((r - r2).abs() < 1e-6, "{r} vs {r2}");
            }
        }
    }

    /// ER never merges rows with conflicting non-null text values, and its
    /// output never exceeds the input size.
    #[test]
    fn er_output_bounds_and_cluster_partition(t in arb_table()) {
        let er = EntityResolver::new(ErConfig::default(), Gazetteer::new());
        let out = er.resolve(&t);
        prop_assert!(out.table.row_count() <= t.row_count().max(1) || t.row_count() == 0);
        // Clusters partition the input rows.
        let mut seen = vec![false; t.row_count()];
        for cluster in &out.clusters {
            for &i in cluster {
                prop_assert!(!seen[i], "row {i} in two clusters");
                seen[i] = true;
            }
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn pairwise_f1_perfect_on_identity(labels in prop::collection::vec(0usize..5, 0..12)) {
        // Predicting exactly the truth clusters gives F1 = 1.
        let mut clusters: Vec<Vec<usize>> = Vec::new();
        for label in 0..5 {
            let members: Vec<usize> = labels
                .iter()
                .enumerate()
                .filter(|(_, &l)| l == label)
                .map(|(i, _)| i)
                .collect();
            if !members.is_empty() {
                clusters.push(members);
            }
        }
        let (p, r, f1) = pairwise_f1(&clusters, &labels);
        prop_assert_eq!((p, r, f1), (1.0, 1.0, 1.0));
    }
}
