//! A small group-by / aggregation engine with explicit null semantics:
//! nulls never enter an aggregate (like SQL), and rows whose *group key* is
//! null form their own "null" group (displayed with the paper's glyphs).

use std::collections::HashMap;

use dialite_table::{Table, TableError, Value};

/// An aggregate over one column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// Number of non-null values.
    Count,
    /// Number of distinct non-null values.
    CountDistinct,
    /// Sum of numeric values.
    Sum,
    /// Mean of numeric values.
    Mean,
    /// Minimum value (total [`Value`] order over non-nulls).
    Min,
    /// Maximum value.
    Max,
}

impl Aggregate {
    fn label(&self) -> &'static str {
        match self {
            Aggregate::Count => "count",
            Aggregate::CountDistinct => "count_distinct",
            Aggregate::Sum => "sum",
            Aggregate::Mean => "mean",
            Aggregate::Min => "min",
            Aggregate::Max => "max",
        }
    }

    fn apply(&self, values: &[&Value]) -> Value {
        let non_null: Vec<&Value> = values.iter().copied().filter(|v| !v.is_null()).collect();
        if non_null.is_empty() {
            return Value::null_produced();
        }
        match self {
            Aggregate::Count => Value::Int(non_null.len() as i64),
            Aggregate::CountDistinct => {
                let set: std::collections::HashSet<&Value> = non_null.iter().copied().collect();
                Value::Int(set.len() as i64)
            }
            Aggregate::Sum => {
                let nums: Vec<f64> = non_null.iter().filter_map(|v| v.as_f64()).collect();
                if nums.is_empty() {
                    Value::null_produced()
                } else {
                    let s: f64 = nums.iter().sum();
                    if non_null.iter().all(|v| matches!(v, Value::Int(_))) {
                        Value::Int(s as i64)
                    } else {
                        Value::Float(s)
                    }
                }
            }
            Aggregate::Mean => {
                let nums: Vec<f64> = non_null.iter().filter_map(|v| v.as_f64()).collect();
                if nums.is_empty() {
                    Value::null_produced()
                } else {
                    Value::Float(nums.iter().sum::<f64>() / nums.len() as f64)
                }
            }
            Aggregate::Min => (*non_null.iter().min().unwrap()).clone(),
            Aggregate::Max => (*non_null.iter().max().unwrap()).clone(),
        }
    }
}

/// A group-by query: `GROUP BY key_column` with a list of aggregates.
#[derive(Debug, Clone)]
pub struct GroupBy {
    key_column: String,
    aggregates: Vec<(String, Aggregate)>,
}

impl GroupBy {
    /// Group rows by `key_column`.
    pub fn new(key_column: &str) -> GroupBy {
        GroupBy {
            key_column: key_column.to_string(),
            aggregates: Vec::new(),
        }
    }

    /// Add an aggregate over `column` (builder style).
    pub fn aggregate(mut self, column: &str, agg: Aggregate) -> GroupBy {
        self.aggregates.push((column.to_string(), agg));
        self
    }

    /// Run the query, producing a result table with one row per group,
    /// sorted by group key.
    pub fn run(&self, table: &Table) -> Result<Table, TableError> {
        let key_idx =
            table
                .column_index(&self.key_column)
                .ok_or_else(|| TableError::UnknownColumn {
                    table: table.name().to_string(),
                    column: self.key_column.clone(),
                })?;
        let mut agg_idx = Vec::with_capacity(self.aggregates.len());
        for (col, _) in &self.aggregates {
            let idx = table
                .column_index(col)
                .ok_or_else(|| TableError::UnknownColumn {
                    table: table.name().to_string(),
                    column: col.clone(),
                })?;
            agg_idx.push(idx);
        }

        // Group rows (null keys form one shared group).
        let mut groups: HashMap<Value, Vec<usize>> = HashMap::new();
        for (i, row) in table.rows().enumerate() {
            groups.entry(row[key_idx].clone()).or_default().push(i);
        }
        let mut keys: Vec<Value> = groups.keys().cloned().collect();
        keys.sort();

        let mut out_cols = vec![self.key_column.clone()];
        for (col, agg) in &self.aggregates {
            out_cols.push(format!("{}({col})", agg.label()));
        }
        let mut out = Table::new(
            &format!("{} by {}", table.name(), self.key_column),
            &out_cols,
        )?;
        for key in keys {
            let rows = &groups[&key];
            let mut out_row = Vec::with_capacity(1 + self.aggregates.len());
            out_row.push(key.clone());
            for ((_, agg), &idx) in self.aggregates.iter().zip(&agg_idx) {
                let values: Vec<&Value> = rows
                    .iter()
                    .map(|&r| &table.row(r).expect("row index from enumeration")[idx])
                    .collect();
                out_row.push(agg.apply(&values));
            }
            out.push_row(out_row)?;
        }
        out.infer_types();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dialite_table::table;

    fn cities() -> Table {
        table! {
            "cities"; ["country", "city", "pop"];
            ["Germany", "Berlin", 3_600_000],
            ["Germany", "Hamburg", 1_800_000],
            ["Spain", "Madrid", 3_200_000],
            ["Spain", "Barcelona", Value::null_missing()],
            [Value::null_produced(), "Atlantis", 1],
        }
    }

    #[test]
    fn count_and_sum_per_group() {
        let out = GroupBy::new("country")
            .aggregate("city", Aggregate::Count)
            .aggregate("pop", Aggregate::Sum)
            .run(&cities())
            .unwrap();
        // Groups sorted: null, Germany, Spain.
        assert_eq!(out.row_count(), 3);
        let germany = out
            .rows()
            .find(|r| r[0] == Value::Text("Germany".into()))
            .unwrap();
        assert_eq!(germany[1], Value::Int(2));
        assert_eq!(germany[2], Value::Int(5_400_000));
        let spain = out
            .rows()
            .find(|r| r[0] == Value::Text("Spain".into()))
            .unwrap();
        assert_eq!(spain[1], Value::Int(2));
        assert_eq!(
            spain[2],
            Value::Int(3_200_000),
            "null pop excluded from sum"
        );
    }

    #[test]
    fn null_keys_form_their_own_group() {
        let out = GroupBy::new("country")
            .aggregate("pop", Aggregate::Count)
            .run(&cities())
            .unwrap();
        let null_group = out.rows().find(|r| r[0].is_null()).unwrap();
        assert_eq!(null_group[1], Value::Int(1));
    }

    #[test]
    fn mean_min_max() {
        let out = GroupBy::new("country")
            .aggregate("pop", Aggregate::Mean)
            .aggregate("pop", Aggregate::Min)
            .aggregate("pop", Aggregate::Max)
            .run(&cities())
            .unwrap();
        let germany = out
            .rows()
            .find(|r| r[0] == Value::Text("Germany".into()))
            .unwrap();
        assert_eq!(germany[1], Value::Float(2_700_000.0));
        assert_eq!(germany[2], Value::Int(1_800_000));
        assert_eq!(germany[3], Value::Int(3_600_000));
    }

    #[test]
    fn count_distinct() {
        let t = table! {
            "t"; ["g", "v"];
            ["a", 1], ["a", 1], ["a", 2], ["a", Value::null_missing()],
        };
        let out = GroupBy::new("g")
            .aggregate("v", Aggregate::CountDistinct)
            .run(&t)
            .unwrap();
        assert_eq!(out.row(0).unwrap()[1], Value::Int(2));
    }

    #[test]
    fn all_null_aggregate_is_produced_null() {
        let t = table! {
            "t"; ["g", "v"];
            ["a", Value::null_missing()],
        };
        let out = GroupBy::new("g")
            .aggregate("v", Aggregate::Sum)
            .run(&t)
            .unwrap();
        assert!(out.row(0).unwrap()[1].is_null());
    }

    #[test]
    fn sum_of_text_column_is_null() {
        let t = table! { "t"; ["g", "v"]; ["a", "x"], ["a", "y"] };
        let out = GroupBy::new("g")
            .aggregate("v", Aggregate::Sum)
            .run(&t)
            .unwrap();
        assert!(out.row(0).unwrap()[1].is_null());
    }

    #[test]
    fn unknown_columns_error() {
        assert!(GroupBy::new("nope").run(&cities()).is_err());
        assert!(GroupBy::new("country")
            .aggregate("nope", Aggregate::Count)
            .run(&cities())
            .is_err());
    }

    #[test]
    fn output_column_names_are_descriptive() {
        let out = GroupBy::new("country")
            .aggregate("pop", Aggregate::Mean)
            .run(&cities())
            .unwrap();
        let names: Vec<&str> = out.schema().names().collect();
        assert_eq!(names, vec!["country", "mean(pop)"]);
    }

    #[test]
    fn mixed_int_float_sum_is_float() {
        let t = table! { "t"; ["g", "v"]; ["a", 1], ["a", 0.5] };
        let out = GroupBy::new("g")
            .aggregate("v", Aggregate::Sum)
            .run(&t)
            .unwrap();
        assert_eq!(out.row(0).unwrap()[1], Value::Float(1.5));
    }
}
