//! Entity resolution over integrated tables — the downstream application of
//! paper §3.2 (Fig. 8(c)/(d)), standing in for `py_entitymatching`.
//!
//! Pipeline: **block** (candidate pairs share a canonical value in some key
//! column) → **match** (per-attribute similarity features with an
//! agree/conflict rule) → **cluster** (union-find over matches) →
//! **consolidate** (one tuple per entity, non-null values win).
//!
//! The matcher is deliberately *conservative with nulls*: a null attribute
//! can neither support nor veto a match. That is exactly why ER over the
//! outer-join result of Fig. 8(a) cannot resolve the fragmented JnJ/USA
//! tuples (too few agreements), while over the FD result it can — the
//! paper's demonstration.

use std::collections::{HashMap, HashSet};

use dialite_table::{NullKind, Table, Value};
use dialite_text::{acronym_of, jaccard, levenshtein_sim, word_tokens};

/// A synonym dictionary mapping aliases to canonical forms, applied after
/// whitespace/case normalization. The stand-in for the synonymy a trained
/// py_entitymatching matcher learns from labeled pairs (DESIGN.md §1).
#[derive(Debug, Clone, Default)]
pub struct Gazetteer {
    canon: HashMap<String, String>,
}

fn normalize(s: &str) -> String {
    word_tokens(s).join(" ")
}

impl Gazetteer {
    /// Empty gazetteer (string similarity only).
    pub fn new() -> Gazetteer {
        Gazetteer::default()
    }

    /// Register an alias → canonical pair.
    pub fn add(&mut self, alias: &str, canonical: &str) {
        self.canon.insert(normalize(alias), normalize(canonical));
    }

    /// The COVID/geo gazetteer used by the demo scenarios.
    pub fn covid_default() -> Gazetteer {
        let mut g = Gazetteer::new();
        for (alias, canon) in [
            ("USA", "United States"),
            ("US", "United States"),
            ("United States of America", "United States"),
            ("UK", "United Kingdom"),
            ("Great Britain", "United Kingdom"),
            ("JnJ", "Johnson & Johnson"),
            ("J&J", "Johnson & Johnson"),
            ("Janssen", "Johnson & Johnson"),
            ("BioNTech", "Pfizer"),
            ("Food and Drug Administration", "FDA"),
            ("European Medicines Agency", "EMA"),
        ] {
            g.add(alias, canon);
        }
        g
    }

    /// Canonical form of a string (normalized; mapped if an alias).
    pub fn canonical(&self, s: &str) -> String {
        let n = normalize(s);
        self.canon.get(&n).cloned().unwrap_or(n)
    }

    /// Number of registered aliases.
    pub fn len(&self) -> usize {
        self.canon.len()
    }

    /// `true` when no alias is registered.
    pub fn is_empty(&self) -> bool {
        self.canon.is_empty()
    }
}

/// Matcher thresholds.
#[derive(Debug, Clone)]
pub struct ErConfig {
    /// Attribute similarity at or above this counts as an *agreement*.
    pub agree_threshold: f64,
    /// Attribute similarity strictly below this is a *conflict* (vetoes the
    /// match: two entities with clearly different names are different even
    /// if everything else matches).
    pub conflict_threshold: f64,
    /// Minimum number of agreeing attributes for a match. Two by default —
    /// one shared attribute is co-reference evidence, not identity.
    pub min_agreements: usize,
    /// Columns considered by blocking and matching (`None` = all).
    pub key_columns: Option<Vec<usize>>,
}

impl Default for ErConfig {
    fn default() -> Self {
        ErConfig {
            agree_threshold: 0.8,
            conflict_threshold: 0.35,
            min_agreements: 2,
            key_columns: None,
        }
    }
}

/// The result of resolution: a consolidated table plus, for every output
/// row, the input row indices merged into it.
#[derive(Debug, Clone)]
pub struct ErResult {
    /// One consolidated tuple per entity.
    pub table: Table,
    /// `clusters[i]` = input rows merged into output row `i` (sorted).
    pub clusters: Vec<Vec<usize>>,
}

impl ErResult {
    /// Number of entities found.
    pub fn entity_count(&self) -> usize {
        self.clusters.len()
    }

    /// Number of input rows that were merged with at least one other row.
    pub fn resolved_rows(&self) -> usize {
        self.clusters
            .iter()
            .filter(|c| c.len() > 1)
            .map(|c| c.len())
            .sum()
    }
}

/// The entity resolver. See the module docs for the pipeline.
#[derive(Debug, Clone)]
pub struct EntityResolver {
    config: ErConfig,
    gazetteer: Gazetteer,
}

impl EntityResolver {
    /// Resolver with explicit configuration and gazetteer.
    pub fn new(config: ErConfig, gazetteer: Gazetteer) -> EntityResolver {
        EntityResolver { config, gazetteer }
    }

    /// Default thresholds with the COVID gazetteer — the demo setup.
    pub fn demo_default() -> EntityResolver {
        EntityResolver::new(ErConfig::default(), Gazetteer::covid_default())
    }

    /// Similarity of two cell values in `[0, 1]`; `None` when either is
    /// null (nulls neither support nor veto).
    pub fn value_sim(&self, a: &Value, b: &Value) -> Option<f64> {
        if a.is_null() || b.is_null() {
            return None;
        }
        if a == b {
            return Some(1.0);
        }
        match (a, b) {
            (Value::Text(x), Value::Text(y)) => {
                let cx = self.gazetteer.canonical(x);
                let cy = self.gazetteer.canonical(y);
                if cx == cy && !cx.is_empty() {
                    return Some(1.0);
                }
                let lev = levenshtein_sim(&cx, &cy);
                let toks_x: HashSet<String> = word_tokens(x).into_iter().collect();
                let toks_y: HashSet<String> = word_tokens(y).into_iter().collect();
                let jac = if toks_x.is_empty() && toks_y.is_empty() {
                    0.0
                } else {
                    jaccard(&toks_x, &toks_y)
                };
                let acr = if acronym_of(x, y) || acronym_of(y, x) {
                    0.9
                } else {
                    0.0
                };
                Some(lev.max(jac).max(acr))
            }
            _ => {
                // Numeric / mixed: relative closeness.
                match (a.as_f64(), b.as_f64()) {
                    (Some(x), Some(y)) => {
                        let denom = x.abs().max(y.abs());
                        if denom == 0.0 {
                            Some(1.0)
                        } else {
                            Some((1.0 - (x - y).abs() / denom).max(0.0))
                        }
                    }
                    _ => Some(levenshtein_sim(&a.to_string(), &b.to_string())),
                }
            }
        }
    }

    fn key_columns(&self, table: &Table) -> Vec<usize> {
        match &self.config.key_columns {
            Some(cols) => cols.clone(),
            None => (0..table.column_count()).collect(),
        }
    }

    /// The agree/conflict match rule over the key columns.
    pub fn rows_match(&self, a: &[Value], b: &[Value], key_columns: &[usize]) -> bool {
        let mut agreements = 0usize;
        for &c in key_columns {
            match self.value_sim(&a[c], &b[c]) {
                None => {}
                Some(s) if s >= self.config.agree_threshold => agreements += 1,
                Some(s) if s < self.config.conflict_threshold => return false,
                Some(_) => {}
            }
        }
        agreements >= self.config.min_agreements
    }

    /// Resolve a table into entities.
    pub fn resolve(&self, table: &Table) -> ErResult {
        let n = table.row_count();
        let keys = self.key_columns(table);

        // Blocking: rows sharing a canonical value in any key column.
        let mut blocks: HashMap<(usize, String), Vec<usize>> = HashMap::new();
        for (i, row) in table.rows().enumerate() {
            for &c in &keys {
                if let Some(tok) = row[c].overlap_token() {
                    blocks
                        .entry((c, self.gazetteer.canonical(&tok)))
                        .or_default()
                        .push(i);
                }
            }
        }
        let mut candidate_pairs: HashSet<(usize, usize)> = HashSet::new();
        for rows in blocks.values() {
            for (x, &i) in rows.iter().enumerate() {
                for &j in rows.iter().skip(x + 1) {
                    candidate_pairs.insert((i.min(j), i.max(j)));
                }
            }
        }

        // Match + union-find clustering.
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], x: usize) -> usize {
            let mut r = x;
            while parent[r] != r {
                r = parent[r];
            }
            let mut c = x;
            while parent[c] != r {
                let next = parent[c];
                parent[c] = r;
                c = next;
            }
            r
        }
        let mut pairs: Vec<(usize, usize)> = candidate_pairs.into_iter().collect();
        pairs.sort_unstable();
        for (i, j) in pairs {
            let (ra, rb) = (table.row(i).unwrap(), table.row(j).unwrap());
            if self.rows_match(ra, rb, &keys) {
                let (pi, pj) = (find(&mut parent, i), find(&mut parent, j));
                if pi != pj {
                    parent[pi.max(pj)] = pi.min(pj);
                }
            }
        }

        // Collect clusters in first-row order.
        let mut cluster_of: HashMap<usize, usize> = HashMap::new();
        let mut clusters: Vec<Vec<usize>> = Vec::new();
        for i in 0..n {
            let root = find(&mut parent, i);
            let idx = *cluster_of.entry(root).or_insert_with(|| {
                clusters.push(Vec::new());
                clusters.len() - 1
            });
            clusters[idx].push(i);
        }

        // Consolidate each cluster.
        let columns: Vec<String> = table.schema().names().map(str::to_string).collect();
        let mut out = Table::new(&format!("ER({})", table.name()), &columns)
            .expect("schema names are unique");
        for cluster in &clusters {
            let row = consolidate(table, cluster);
            out.push_row(row)
                .expect("consolidated row has schema arity");
        }
        out.infer_types();
        ErResult {
            table: out,
            clusters,
        }
    }
}

/// Merge a cluster into one tuple: per column, prefer non-null values; among
/// non-nulls pick the most informative representative (longest rendering,
/// ties broken lexicographically — "United States" beats "USA", "J&J" beats
/// "JnJ"); among nulls, missing (`±`) dominates produced (`⊥`).
fn consolidate(table: &Table, cluster: &[usize]) -> Vec<Value> {
    let ncols = table.column_count();
    let mut out = Vec::with_capacity(ncols);
    for c in 0..ncols {
        let mut best: Option<&Value> = None;
        let mut any_missing = false;
        for &r in cluster {
            let v = &table.row(r).unwrap()[c];
            match v {
                Value::Null(NullKind::Missing) => any_missing = true,
                Value::Null(NullKind::Produced) => {}
                v => {
                    best = Some(match best {
                        None => v,
                        Some(cur) => {
                            let (lv, lc) = (v.to_string(), cur.to_string());
                            match lv.chars().count().cmp(&lc.chars().count()) {
                                std::cmp::Ordering::Greater => v,
                                std::cmp::Ordering::Less => cur,
                                std::cmp::Ordering::Equal => {
                                    if lv < lc {
                                        v
                                    } else {
                                        cur
                                    }
                                }
                            }
                        }
                    });
                }
            }
        }
        out.push(match best {
            Some(v) => v.clone(),
            None if any_missing => Value::null_missing(),
            None => Value::null_produced(),
        });
    }
    out
}

/// Pairwise precision/recall/F1 of predicted clusters against ground-truth
/// entity labels — the quality metric of experiment E10.
pub fn pairwise_f1(clusters: &[Vec<usize>], truth: &[usize]) -> (f64, f64, f64) {
    let mut predicted: HashSet<(usize, usize)> = HashSet::new();
    for c in clusters {
        for (x, &i) in c.iter().enumerate() {
            for &j in c.iter().skip(x + 1) {
                predicted.insert((i.min(j), i.max(j)));
            }
        }
    }
    let mut actual: HashSet<(usize, usize)> = HashSet::new();
    for i in 0..truth.len() {
        for j in (i + 1)..truth.len() {
            if truth[i] == truth[j] {
                actual.insert((i, j));
            }
        }
    }
    let tp = predicted.intersection(&actual).count() as f64;
    let precision = if predicted.is_empty() {
        1.0
    } else {
        tp / predicted.len() as f64
    };
    let recall = if actual.is_empty() {
        1.0
    } else {
        tp / actual.len() as f64
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    (precision, recall, f1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dialite_table::table;

    /// Paper Fig. 8(b): the FD result over the vaccine tables.
    fn fd_result() -> Table {
        table! {
            "FD"; ["Vaccine", "Approver", "Country"];
            ["Pfizer", "FDA", "United States"],
            ["JnJ", Value::null_produced(), "USA"],
            ["J&J", "FDA", "United States"],
        }
    }

    /// Paper Fig. 8(a): the outer-join result.
    fn oj_result() -> Table {
        table! {
            "OJ"; ["Vaccine", "Approver", "Country"];
            ["Pfizer", "FDA", "United States"],
            ["JnJ", Value::null_missing(), Value::null_produced()],
            [Value::null_produced(), Value::null_missing(), "USA"],
            ["J&J", Value::null_produced(), "United States"],
            ["JnJ", Value::null_produced(), "USA"],
        }
    }

    #[test]
    fn reproduces_paper_fig8d_er_over_fd() {
        let er = EntityResolver::demo_default();
        let out = er.resolve(&fd_result());
        let expected = table! {
            "ER(FD)"; ["Vaccine", "Approver", "Country"];
            ["Pfizer", "FDA", "United States"],
            ["J&J", "FDA", "United States"],
        };
        assert!(
            out.table.same_content(&expected),
            "got:\n{}\nexpected:\n{}",
            out.table,
            expected
        );
        assert_eq!(out.entity_count(), 2);
    }

    #[test]
    fn reproduces_paper_fig8c_er_over_outer_join() {
        // Paper Fig. 8(c), exactly: f11/f12 (J&J/JnJ over United States/USA)
        // do resolve, but the incomplete tuples f9 and f10 cannot be merged
        // with anything — and no tuple carries the J&J approver.
        let er = EntityResolver::demo_default();
        let out = er.resolve(&oj_result());
        let expected = table! {
            "ER(OJ)"; ["Vaccine", "Approver", "Country"];
            ["Pfizer", "FDA", "United States"],
            ["JnJ", Value::null_missing(), Value::null_produced()],
            [Value::null_produced(), Value::null_missing(), "USA"],
            ["J&J", Value::null_produced(), "United States"],
        };
        assert!(
            out.table.same_content(&expected),
            "got:\n{}\nexpected:\n{}",
            out.table,
            expected
        );
        let jnj_with_approver = out.table.rows().any(|r| {
            matches!(&r[0], Value::Text(s) if er.gazetteer.canonical(s) == "johnson johnson")
                && !r[1].is_null()
        });
        assert!(
            !jnj_with_approver,
            "outer join cannot derive J&J's approver"
        );
    }

    #[test]
    fn fd_er_output_is_smaller_and_more_complete_than_oj_er() {
        let er = EntityResolver::demo_default();
        let fd = er.resolve(&fd_result());
        let oj = er.resolve(&oj_result());
        assert!(fd.table.row_count() < oj.table.row_count());
        assert!(fd.table.null_rate() < oj.table.null_rate());
    }

    #[test]
    fn gazetteer_canonicalizes() {
        let g = Gazetteer::covid_default();
        assert_eq!(g.canonical("USA"), g.canonical("United States"));
        assert_eq!(g.canonical("J&J"), g.canonical("JnJ"));
        assert_eq!(g.canonical("  pfizer "), "pfizer");
        assert!(!g.is_empty());
    }

    #[test]
    fn value_sim_rules() {
        let er = EntityResolver::demo_default();
        // Nulls: no evidence either way.
        assert_eq!(er.value_sim(&Value::null_missing(), &Value::Int(1)), None);
        // Exact.
        assert_eq!(er.value_sim(&Value::Int(3), &Value::Int(3)), Some(1.0));
        // Synonyms.
        assert_eq!(
            er.value_sim(
                &Value::Text("USA".into()),
                &Value::Text("United States".into())
            ),
            Some(1.0)
        );
        // Acronym fallback for unseen pairs.
        let s = er
            .value_sim(
                &Value::Text("WHO".into()),
                &Value::Text("World Health Organization".into()),
            )
            .unwrap();
        assert!(s >= 0.9, "acronym feature should fire: {s}");
        // Numeric closeness.
        let s = er.value_sim(&Value::Int(100), &Value::Int(90)).unwrap();
        assert!((s - 0.9).abs() < 1e-12);
        // Clear conflicts are low.
        let s = er
            .value_sim(&Value::Text("Pfizer".into()), &Value::Text("J&J".into()))
            .unwrap();
        assert!(s < 0.35, "Pfizer vs J&J must conflict: {s}");
    }

    #[test]
    fn conflict_vetoes_match_despite_agreements() {
        let er = EntityResolver::demo_default();
        let t = table! {
            "t"; ["name", "agency", "country"];
            ["Pfizer", "FDA", "United States"],
            ["J&J", "FDA", "United States"],
        };
        let out = er.resolve(&t);
        assert_eq!(out.entity_count(), 2, "conflicting names must not merge");
    }

    #[test]
    fn min_agreements_is_enforced() {
        let er = EntityResolver::demo_default();
        let t = table! {
            "t"; ["name", "x", "y"];
            ["alpha", 1, Value::null_missing()],
            ["alpha", Value::null_missing(), 2],
        };
        // Only one agreement (name); x/y are null-disjoint.
        let out = er.resolve(&t);
        assert_eq!(out.entity_count(), 2);
        // Lowering the bar to 1 merges them.
        let lax = EntityResolver::new(
            ErConfig {
                min_agreements: 1,
                ..ErConfig::default()
            },
            Gazetteer::covid_default(),
        );
        let out = lax.resolve(&t);
        assert_eq!(out.entity_count(), 1);
        // And consolidation fills both x and y.
        let row = out.table.row(0).unwrap();
        assert_eq!(row[1], Value::Int(1));
        assert_eq!(row[2], Value::Int(2));
    }

    #[test]
    fn consolidation_prefers_informative_values() {
        let t = table! {
            "t"; ["country", "code"];
            ["USA", 1],
            ["United States", 1],
        };
        let er = EntityResolver::demo_default();
        let out = er.resolve(&t);
        assert_eq!(out.entity_count(), 1);
        assert_eq!(
            out.table.row(0).unwrap()[0],
            Value::Text("United States".into()),
            "longest representative wins"
        );
    }

    #[test]
    fn transitive_clusters_via_union_find() {
        let er = EntityResolver::new(
            ErConfig {
                min_agreements: 1,
                ..ErConfig::default()
            },
            Gazetteer::covid_default(),
        );
        let t = table! {
            "t"; ["a"];
            ["USA"],
            ["United States"],
            ["United States of America"],
        };
        let out = er.resolve(&t);
        assert_eq!(out.entity_count(), 1);
        assert_eq!(out.clusters[0], vec![0, 1, 2]);
    }

    #[test]
    fn empty_table() {
        let er = EntityResolver::demo_default();
        let t = Table::new("e", &["a"]).unwrap();
        let out = er.resolve(&t);
        assert_eq!(out.entity_count(), 0);
        assert_eq!(out.table.row_count(), 0);
    }

    #[test]
    fn pairwise_f1_metric() {
        // Truth: {0,1} and {2}; prediction: {0,1,2} → P=1/3, R=1, F1=0.5.
        let (p, r, f1) = pairwise_f1(&[vec![0, 1, 2]], &[7, 7, 9]);
        assert!((p - 1.0 / 3.0).abs() < 1e-12);
        assert!((r - 1.0).abs() < 1e-12);
        assert!((f1 - 0.5).abs() < 1e-12);
        // Perfect prediction.
        let (p, r, f1) = pairwise_f1(&[vec![0, 1], vec![2]], &[7, 7, 9]);
        assert_eq!((p, r, f1), (1.0, 1.0, 1.0));
        // No pairs anywhere.
        let (p, r, f1) = pairwise_f1(&[vec![0], vec![1]], &[1, 2]);
        assert_eq!((p, r, f1), (1.0, 1.0, 1.0));
    }
}
