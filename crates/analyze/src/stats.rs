//! Null-aware statistics over table columns.

use dialite_table::{Table, TableError, Value};

/// Summary statistics of one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSummary {
    /// Column name.
    pub column: String,
    /// Total rows.
    pub rows: usize,
    /// Null cells (either kind).
    pub nulls: usize,
    /// Distinct non-null values.
    pub distinct: usize,
    /// Mean of numeric values (`None` for non-numeric columns).
    pub mean: Option<f64>,
    /// Population standard deviation of numeric values.
    pub std: Option<f64>,
    /// Minimum numeric value.
    pub min: Option<f64>,
    /// Maximum numeric value.
    pub max: Option<f64>,
}

/// Compute a [`ColumnSummary`].
pub fn column_summary(table: &Table, column: usize) -> Result<ColumnSummary, TableError> {
    if column >= table.column_count() {
        return Err(TableError::UnknownColumn {
            table: table.name().to_string(),
            column: format!("#{column}"),
        });
    }
    let rows = table.row_count();
    let nulls = table.column_values(column).filter(|v| v.is_null()).count();
    let distinct = table.column_token_set(column).len();
    let nums: Vec<f64> = table
        .column_values(column)
        .filter_map(Value::as_f64)
        .collect();
    let (mean, std, min, max) = if nums.is_empty() {
        (None, None, None, None)
    } else {
        let n = nums.len() as f64;
        let mean = nums.iter().sum::<f64>() / n;
        let var = nums.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        let min = nums.iter().copied().fold(f64::INFINITY, f64::min);
        let max = nums.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        (Some(mean), Some(var.sqrt()), Some(min), Some(max))
    };
    Ok(ColumnSummary {
        column: table.schema().column(column).name.clone(),
        rows,
        nulls,
        distinct,
        mean,
        std,
        min,
        max,
    })
}

/// Pearson correlation of paired observations. `None` when fewer than two
/// pairs or when either side has zero variance.
pub fn pearson(pairs: &[(f64, f64)]) -> Option<f64> {
    if pairs.len() < 2 {
        return None;
    }
    let n = pairs.len() as f64;
    let mean_x = pairs.iter().map(|p| p.0).sum::<f64>() / n;
    let mean_y = pairs.iter().map(|p| p.1).sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for (x, y) in pairs {
        let dx = x - mean_x;
        let dy = y - mean_y;
        cov += dx * dy;
        var_x += dx * dx;
        var_y += dy * dy;
    }
    if var_x == 0.0 || var_y == 0.0 {
        return None;
    }
    // Clamp: the value is mathematically in [-1, 1]; floating-point rounding
    // can exceed it by an epsilon on perfectly correlated inputs.
    Some((cov / (var_x.sqrt() * var_y.sqrt())).clamp(-1.0, 1.0))
}

/// Pearson correlation of two table columns over *pairwise-complete*
/// observations (rows where both values are numeric and non-null) — the
/// paper's Example 3 runs exactly this over the integrated COVID table,
/// where integration introduced nulls.
pub fn pearson_columns(table: &Table, col_x: usize, col_y: usize) -> Option<f64> {
    let pairs: Vec<(f64, f64)> = table
        .rows()
        .filter_map(|row| Some((row[col_x].as_f64()?, row[col_y].as_f64()?)))
        .collect();
    pearson(&pairs)
}

/// Spearman rank correlation of paired observations: Pearson over the
/// average ranks (ties averaged). Robust to monotone transformations, a
/// useful companion to [`pearson`] when integrated columns mix scales.
pub fn spearman(pairs: &[(f64, f64)]) -> Option<f64> {
    if pairs.len() < 2 {
        return None;
    }
    fn ranks(values: &[f64]) -> Vec<f64> {
        let mut idx: Vec<usize> = (0..values.len()).collect();
        idx.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
        let mut out = vec![0.0; values.len()];
        let mut i = 0;
        while i < idx.len() {
            let mut j = i;
            while j + 1 < idx.len() && values[idx[j + 1]] == values[idx[i]] {
                j += 1;
            }
            // Average rank for the tie run [i, j].
            let avg = (i + j) as f64 / 2.0 + 1.0;
            for &k in &idx[i..=j] {
                out[k] = avg;
            }
            i = j + 1;
        }
        out
    }
    let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
    let rx = ranks(&xs);
    let ry = ranks(&ys);
    let ranked: Vec<(f64, f64)> = rx.into_iter().zip(ry).collect();
    pearson(&ranked)
}

/// Profile every column of a table — the "common aggregations and
/// statistics" panel of the demo's Analyze stage. Returns a summary table
/// with one row per column.
pub fn describe(table: &Table) -> Table {
    let mut out = Table::new(
        &format!("describe({})", table.name()),
        &[
            "column", "type", "rows", "nulls", "distinct", "mean", "min", "max",
        ],
    )
    .expect("static schema");
    for c in 0..table.column_count() {
        let s = column_summary(table, c).expect("index in range");
        let opt = |v: Option<f64>| v.map_or(Value::null_produced(), Value::Float);
        out.push_row(vec![
            Value::Text(s.column),
            Value::Text(table.schema().column(c).ctype.to_string()),
            Value::Int(s.rows as i64),
            Value::Int(s.nulls as i64),
            Value::Int(s.distinct as i64),
            opt(s.mean),
            opt(s.min),
            opt(s.max),
        ])
        .expect("static arity");
    }
    out.infer_types();
    out
}

/// The rows holding the minimum and maximum (numeric) value of a column —
/// Example 3's "Boston is the city with the lowest vaccination rate and
/// Toronto has the highest". Returns `(argmin_row, argmax_row)` indices.
pub fn extremes(table: &Table, column: usize) -> Option<(usize, usize)> {
    let mut min: Option<(usize, f64)> = None;
    let mut max: Option<(usize, f64)> = None;
    for (i, row) in table.rows().enumerate() {
        if let Some(x) = row[column].as_f64() {
            if min.is_none_or(|(_, m)| x < m) {
                min = Some((i, x));
            }
            if max.is_none_or(|(_, m)| x > m) {
                max = Some((i, x));
            }
        }
    }
    Some((min?.0, max?.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dialite_table::table;

    /// The integrated COVID table of paper Fig. 3 (typed values).
    fn fig3_integrated() -> Table {
        table! {
            "FD"; ["Country", "City", "Vaccination Rate", "Total Cases", "Death Rate"];
            ["Germany", "Berlin", 0.63, 1_400_000, 147],
            ["England", "Manchester", 0.78, Value::null_produced(), Value::null_produced()],
            ["Spain", "Barcelona", 0.82, 2_680_000, 275],
            ["Canada", "Toronto", 0.83, Value::null_produced(), Value::null_produced()],
            ["Mexico", "Mexico City", Value::null_missing(), Value::null_produced(), Value::null_produced()],
            ["USA", "Boston", 0.62, 263_000, 335],
            [Value::null_produced(), "New Delhi", Value::null_produced(), 2_000_000, 158],
        }
    }

    #[test]
    fn example3_vaccination_death_rate_correlation_is_0_16() {
        let t = fig3_integrated();
        let r = pearson_columns(&t, 2, 4).unwrap();
        assert!(
            (r - 0.16).abs() < 0.005,
            "paper Example 3 reports 0.16, got {r:.4}"
        );
    }

    #[test]
    fn example3_cases_vaccination_correlation_is_0_9() {
        let t = fig3_integrated();
        let r = pearson_columns(&t, 3, 2).unwrap();
        assert!(
            (r - 0.9).abs() < 0.01,
            "paper Example 3 reports 0.9, got {r:.4}"
        );
    }

    #[test]
    fn example3_extremes_boston_lowest_toronto_highest() {
        let t = fig3_integrated();
        let (lo, hi) = extremes(&t, 2).unwrap();
        assert_eq!(t.row(lo).unwrap()[1], Value::Text("Boston".into()));
        assert_eq!(t.row(hi).unwrap()[1], Value::Text("Toronto".into()));
    }

    #[test]
    fn pearson_known_values() {
        // Perfect positive and negative correlation.
        assert!((pearson(&[(1.0, 2.0), (2.0, 4.0), (3.0, 6.0)]).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&[(1.0, 3.0), (2.0, 2.0), (3.0, 1.0)]).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_cases() {
        assert_eq!(pearson(&[]), None);
        assert_eq!(pearson(&[(1.0, 1.0)]), None);
        assert_eq!(pearson(&[(1.0, 5.0), (1.0, 7.0)]), None, "zero x variance");
    }

    #[test]
    fn pearson_columns_skips_nulls_pairwise() {
        let t = fig3_integrated();
        // Only 3 rows have both rate and death-rate → n = 3 behind the 0.16.
        let pairs: Vec<(f64, f64)> = t
            .rows()
            .filter_map(|r| Some((r[2].as_f64()?, r[4].as_f64()?)))
            .collect();
        assert_eq!(pairs.len(), 3);
    }

    #[test]
    fn summary_counts_nulls_and_stats() {
        let t = fig3_integrated();
        let s = column_summary(&t, 2).unwrap();
        assert_eq!(s.rows, 7);
        assert_eq!(s.nulls, 2);
        assert_eq!(s.distinct, 5);
        assert!((s.min.unwrap() - 0.62).abs() < 1e-12);
        assert!((s.max.unwrap() - 0.83).abs() < 1e-12);
        let text = column_summary(&t, 1).unwrap();
        assert_eq!(text.mean, None);
        assert_eq!(text.distinct, 7);
    }

    #[test]
    fn summary_unknown_column_errors() {
        let t = fig3_integrated();
        assert!(column_summary(&t, 99).is_err());
    }

    #[test]
    fn extremes_none_for_non_numeric() {
        let t = table! { "t"; ["name"]; ["a"], ["b"] };
        assert_eq!(extremes(&t, 0), None);
    }

    #[test]
    fn spearman_detects_monotone_relations() {
        // Perfectly monotone but non-linear: spearman 1, pearson < 1.
        let pairs: Vec<(f64, f64)> = (1..=8).map(|i| (i as f64, (i as f64).exp())).collect();
        let s = spearman(&pairs).unwrap();
        let p = pearson(&pairs).unwrap();
        assert!((s - 1.0).abs() < 1e-12, "spearman {s}");
        assert!(p < s, "pearson {p} should be below spearman {s}");
    }

    #[test]
    fn spearman_handles_ties() {
        let pairs = [(1.0, 2.0), (1.0, 2.0), (3.0, 5.0), (4.0, 7.0)];
        let s = spearman(&pairs).unwrap();
        assert!((0.0..=1.0).contains(&s));
        assert!(s > 0.9, "strongly increasing despite ties: {s}");
    }

    #[test]
    fn spearman_degenerate() {
        assert_eq!(spearman(&[]), None);
        assert_eq!(spearman(&[(1.0, 1.0)]), None);
        assert_eq!(
            spearman(&[(2.0, 1.0), (2.0, 3.0)]),
            None,
            "tied x has no rank variance"
        );
    }

    #[test]
    fn describe_profiles_all_columns() {
        let t = fig3_integrated();
        let d = describe(&t);
        assert_eq!(d.row_count(), 5);
        let rate_row = d
            .rows()
            .find(|r| r[0] == Value::Text("Vaccination Rate".into()))
            .unwrap();
        assert_eq!(rate_row[2], Value::Int(7)); // rows
        assert_eq!(rate_row[3], Value::Int(2)); // nulls
        assert_eq!(rate_row[4], Value::Int(5)); // distinct
        let city_row = d
            .rows()
            .find(|r| r[0] == Value::Text("City".into()))
            .unwrap();
        assert!(city_row[5].is_null(), "text column has no mean");
    }
}
