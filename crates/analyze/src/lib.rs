//! # dialite-analyze
//!
//! The **Analyze** stage of DIALITE (paper §2.3): downstream applications
//! over integrated tables.
//!
//! * [`stats`] — null-aware summary statistics, Pearson correlation
//!   (the paper's Example 3: correlating vaccination rates with death rates
//!   and case counts over the integrated table) and extremes queries
//!   ("Boston has the lowest vaccination rate, Toronto the highest").
//! * [`agg`] — a small group-by/aggregate engine (count, count-distinct,
//!   sum, mean, min, max) with explicit null semantics.
//! * [`er`] — entity resolution: blocking, per-attribute similarity
//!   features (exact, Levenshtein, token Jaccard, acronym, synonym
//!   gazetteer), an agree/conflict rule matcher, union-find clustering and
//!   null-preferring consolidation. This is the reproduction's substitute
//!   for `py_entitymatching` (DESIGN.md §1): the learned matcher is
//!   replaced by a deterministic feature-weighted rule matcher plus a
//!   gazetteer carrying the synonymy ("JnJ" ≈ "J&J", "USA" ≈ "United
//!   States") that the paper's demo resolves via training data.

pub mod agg;
pub mod er;
pub mod stats;

pub use agg::{Aggregate, GroupBy};
pub use er::{EntityResolver, ErConfig, ErResult, Gazetteer};
pub use stats::{
    column_summary, describe, extremes, pearson, pearson_columns, spearman, ColumnSummary,
};
