//! Confidence-weighted annotation of columns and column pairs — the KB-side
//! half of SANTOS-style semantic table search.
//!
//! A *column annotation* scores each semantic type by the fraction of the
//! column's values that the KB maps to it (after alias resolution and type
//! hierarchy expansion). A *pair annotation* does the same for directed
//! relationships over the rows of two columns, which is SANTOS's
//! "relationship semantics" between a table's columns.

use std::collections::HashMap;

use crate::base::{KnowledgeBase, RelationId, TypeId};

/// Direction of a relationship between two columns (left column plays
/// subject in `Forward`, object in `Backward`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Direction {
    /// left → right facts.
    Forward,
    /// right → left facts.
    Backward,
}

/// Semantic types of a column with confidence scores.
#[derive(Debug, Clone, Default)]
pub struct ColumnAnnotation {
    /// `(type, confidence)` sorted by descending confidence, then type id.
    /// Confidence is the fraction of *annotatable* values carrying the type.
    pub scores: Vec<(TypeId, f64)>,
    /// Fraction of non-empty values known to the KB at all.
    pub coverage: f64,
}

impl ColumnAnnotation {
    /// The highest-confidence type, if any.
    pub fn top(&self) -> Option<(TypeId, f64)> {
        self.scores.first().copied()
    }

    /// Confidence of a specific type (0.0 if absent).
    pub fn confidence(&self, t: TypeId) -> f64 {
        self.scores
            .iter()
            .find(|(id, _)| *id == t)
            .map(|(_, c)| *c)
            .unwrap_or(0.0)
    }
}

/// Directed relationships between two columns with confidence scores.
#[derive(Debug, Clone, Default)]
pub struct PairAnnotation {
    /// `((relation, direction), confidence)` sorted by descending
    /// confidence. Confidence is the fraction of value pairs exhibiting the
    /// relationship.
    pub scores: Vec<((RelationId, Direction), f64)>,
    /// Fraction of value pairs where both sides resolved to known entities.
    pub coverage: f64,
}

impl PairAnnotation {
    /// The highest-confidence relationship, if any.
    pub fn top(&self) -> Option<((RelationId, Direction), f64)> {
        self.scores.first().copied()
    }
}

impl KnowledgeBase {
    /// Annotate a column given its non-null values.
    ///
    /// Votes are counted per *distinct* value (SANTOS annotates the column's
    /// domain, so a repeated value does not dominate the vote).
    pub fn annotate_column<'a, I: IntoIterator<Item = &'a str>>(
        &self,
        values: I,
    ) -> ColumnAnnotation {
        let mut distinct: HashMap<String, ()> = HashMap::new();
        for v in values {
            if !v.trim().is_empty() {
                distinct.entry(crate::base::normalize(v)).or_insert(());
            }
        }
        let total = distinct.len();
        if total == 0 {
            return ColumnAnnotation::default();
        }
        let mut votes: HashMap<TypeId, usize> = HashMap::new();
        let mut known = 0usize;
        for value in distinct.keys() {
            let types = self.types_of(value);
            if self.knows(value) {
                known += 1;
            }
            for t in types {
                *votes.entry(t).or_insert(0) += 1;
            }
        }
        let mut scores: Vec<(TypeId, f64)> = votes
            .into_iter()
            .map(|(t, v)| (t, v as f64 / total as f64))
            .collect();
        scores.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        ColumnAnnotation {
            scores,
            coverage: known as f64 / total as f64,
        }
    }

    /// Annotate the relationship between two columns given their row-aligned
    /// value pairs (nulls should be filtered by the caller; empty strings
    /// are skipped here). Votes are per distinct pair.
    pub fn annotate_pair<'a, I>(&self, pairs: I) -> PairAnnotation
    where
        I: IntoIterator<Item = (&'a str, &'a str)>,
    {
        let mut distinct: HashMap<(String, String), ()> = HashMap::new();
        for (a, b) in pairs {
            if !a.trim().is_empty() && !b.trim().is_empty() {
                distinct
                    .entry((crate::base::normalize(a), crate::base::normalize(b)))
                    .or_insert(());
            }
        }
        let total = distinct.len();
        if total == 0 {
            return PairAnnotation::default();
        }
        let mut votes: HashMap<(RelationId, Direction), usize> = HashMap::new();
        let mut covered = 0usize;
        for (a, b) in distinct.keys() {
            let fwd = self.relations_between(a, b);
            let bwd = self.relations_between(b, a);
            if self.knows(a) && self.knows(b) {
                covered += 1;
            }
            for r in fwd {
                *votes.entry((r, Direction::Forward)).or_insert(0) += 1;
            }
            for r in bwd {
                *votes.entry((r, Direction::Backward)).or_insert(0) += 1;
            }
        }
        let mut scores: Vec<((RelationId, Direction), f64)> = votes
            .into_iter()
            .map(|(k, v)| (k, v as f64 / total as f64))
            .collect();
        scores.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        PairAnnotation {
            scores,
            coverage: covered as f64 / total as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base::KbBuilder;

    fn kb() -> KnowledgeBase {
        let mut b = KbBuilder::new();
        b.add_type("place", None);
        b.add_type("city", Some("place"));
        b.add_type("country", Some("place"));
        for c in ["berlin", "boston", "barcelona"] {
            b.add_entity(c, &["city"]);
        }
        for c in ["germany", "spain"] {
            b.add_entity(c, &["country"]);
        }
        b.add_fact("berlin", "located_in", "germany");
        b.add_fact("barcelona", "located_in", "spain");
        b.build()
    }

    #[test]
    fn column_annotation_scores_majority_type() {
        let kb = kb();
        let ann = kb.annotate_column(["Berlin", "Boston", "Barcelona", "Xyzzy"]);
        let city = kb.type_id("city").unwrap();
        let place = kb.type_id("place").unwrap();
        assert!((ann.confidence(city) - 0.75).abs() < 1e-12);
        assert!((ann.confidence(place) - 0.75).abs() < 1e-12);
        assert!((ann.coverage - 0.75).abs() < 1e-12);
        let (top, conf) = ann.top().unwrap();
        assert!(top == city || top == place);
        assert!((conf - 0.75).abs() < 1e-12);
    }

    #[test]
    fn duplicate_values_do_not_stack_votes() {
        let kb = kb();
        let ann = kb.annotate_column(["Berlin", "berlin", "BERLIN", "unknownville"]);
        let city = kb.type_id("city").unwrap();
        // distinct domain = {berlin, unknownville} → confidence 1/2.
        assert!((ann.confidence(city) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_column_annotation_is_default() {
        let kb = kb();
        let ann = kb.annotate_column(["", "   "]);
        assert!(ann.scores.is_empty());
        assert_eq!(ann.coverage, 0.0);
        assert!(ann.top().is_none());
    }

    #[test]
    fn pair_annotation_detects_direction() {
        let kb = kb();
        let rel = kb.relation_id("located_in").unwrap();
        // city → country order: forward
        let fwd = kb.annotate_pair([("Berlin", "Germany"), ("Barcelona", "Spain")]);
        let ((r, d), conf) = fwd.top().unwrap();
        assert_eq!(r, rel);
        assert_eq!(d, Direction::Forward);
        assert!((conf - 1.0).abs() < 1e-12);
        // reversed order: backward
        let bwd = kb.annotate_pair([("Germany", "Berlin")]);
        assert_eq!(bwd.top().unwrap().0 .1, Direction::Backward);
    }

    #[test]
    fn pair_annotation_confidence_is_fraction_of_pairs() {
        let kb = kb();
        let ann = kb.annotate_pair([
            ("Berlin", "Germany"),
            ("Boston", "Germany"), // no fact
        ]);
        assert!((ann.top().unwrap().1 - 0.5).abs() < 1e-12);
        assert!((ann.coverage - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pair_annotation_empty_for_unknowns() {
        let kb = kb();
        let ann = kb.annotate_pair([("a", "b")]);
        assert!(ann.scores.is_empty());
        assert_eq!(ann.coverage, 0.0);
    }
}
