//! A curated COVID-19 / geography knowledge base covering the entities of
//! the paper's worked examples (Figs. 2–3 and 7–8): cities, countries,
//! vaccines, manufacturers and regulatory agencies, with `located_in`,
//! `approved_by` and `made_in` relationship facts plus the abbreviations
//! ("USA", "JnJ", "J&J") that the entity-resolution demo exercises.

use crate::base::{KbBuilder, KnowledgeBase};

/// Build the curated demo KB.
pub fn covid_kb() -> KnowledgeBase {
    let mut b = KbBuilder::new();

    // Type lattice.
    b.add_type("entity", None);
    b.add_type("place", Some("entity"));
    b.add_type("city", Some("place"));
    b.add_type("capital", Some("city"));
    b.add_type("country", Some("place"));
    b.add_type("organization", Some("entity"));
    b.add_type("agency", Some("organization"));
    b.add_type("company", Some("organization"));
    b.add_type("product", Some("entity"));
    b.add_type("vaccine", Some("product"));

    // Cities of Figs. 2–3 (plus a few more for datagen lakes).
    let cities: &[(&str, bool, &str)] = &[
        ("Berlin", true, "Germany"),
        ("Manchester", false, "England"),
        ("Barcelona", false, "Spain"),
        ("Toronto", false, "Canada"),
        ("Mexico City", true, "Mexico"),
        ("Boston", false, "United States"),
        ("New Delhi", true, "India"),
        ("Madrid", true, "Spain"),
        ("Hamburg", false, "Germany"),
        ("Ottawa", true, "Canada"),
        ("Chicago", false, "United States"),
        ("Mumbai", false, "India"),
        ("London", true, "England"),
        ("Guadalajara", false, "Mexico"),
    ];
    for (city, capital, country) in cities {
        b.add_entity(city, if *capital { &["capital"] } else { &["city"] });
        b.add_entity(country, &["country"]);
        b.add_fact(city, "located_in", country);
    }

    // Country aliases exercised by the ER demo (Fig. 8).
    b.add_alias("USA", "United States");
    b.add_alias("US", "United States");
    b.add_alias("United States of America", "United States");
    b.add_alias("UK", "England");
    b.add_alias("Great Britain", "England");
    b.add_alias("Deutschland", "Germany");

    // Vaccines, manufacturers and agencies of Figs. 7–8.
    for v in [
        "Pfizer",
        "Moderna",
        "Johnson & Johnson",
        "AstraZeneca",
        "Sputnik V",
    ] {
        b.add_entity(v, &["vaccine", "company"]);
    }
    b.add_alias("JnJ", "Johnson & Johnson");
    b.add_alias("J&J", "Johnson & Johnson");
    b.add_alias("Janssen", "Johnson & Johnson");
    b.add_alias("BioNTech", "Pfizer");

    for a in ["FDA", "EMA", "Health Canada", "COFEPRIS", "MHRA", "CDSCO"] {
        b.add_entity(a, &["agency"]);
    }
    b.add_alias("Food and Drug Administration", "FDA");
    b.add_alias("European Medicines Agency", "EMA");

    let approvals: &[(&str, &str)] = &[
        ("Pfizer", "FDA"),
        ("Pfizer", "EMA"),
        ("Pfizer", "Health Canada"),
        ("Moderna", "FDA"),
        ("Moderna", "EMA"),
        ("Johnson & Johnson", "FDA"),
        ("AstraZeneca", "EMA"),
        ("AstraZeneca", "MHRA"),
        ("Sputnik V", "COFEPRIS"),
    ];
    for (vaccine, agency) in approvals {
        b.add_fact(vaccine, "approved_by", agency);
    }

    let origins: &[(&str, &str)] = &[
        ("Pfizer", "United States"),
        ("Moderna", "United States"),
        ("Johnson & Johnson", "United States"),
        ("AstraZeneca", "England"),
        ("Sputnik V", "Russia"),
    ];
    b.add_entity("Russia", &["country"]);
    for (vaccine, country) in origins {
        b.add_fact(vaccine, "made_in", country);
    }

    // Agencies regulate in countries — gives agency columns a relationship
    // with country columns, which the SANTOS scorer can exploit.
    let jurisdictions: &[(&str, &str)] = &[
        ("FDA", "United States"),
        ("EMA", "Spain"),
        ("EMA", "Germany"),
        ("Health Canada", "Canada"),
        ("COFEPRIS", "Mexico"),
        ("MHRA", "England"),
        ("CDSCO", "India"),
    ];
    for (agency, country) in jurisdictions {
        b.add_fact(agency, "regulates_in", country);
    }

    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::Direction;

    #[test]
    fn covers_paper_fig2_entities() {
        let kb = covid_kb();
        for e in [
            "Berlin",
            "Manchester",
            "Barcelona",
            "Toronto",
            "Mexico City",
            "Boston",
            "New Delhi",
            "Germany",
            "England",
            "Spain",
            "Canada",
            "Mexico",
            "USA",
        ] {
            assert!(kb.knows(e), "KB should know {e}");
        }
    }

    #[test]
    fn covers_paper_fig7_entities_via_aliases() {
        let kb = covid_kb();
        assert_eq!(kb.resolve("JnJ"), kb.resolve("J&J"));
        assert_eq!(kb.resolve("USA"), kb.resolve("United States"));
        assert!(kb.knows("FDA"));
    }

    #[test]
    fn city_columns_annotate_as_cities() {
        let kb = covid_kb();
        let ann = kb.annotate_column(["Berlin", "Manchester", "Barcelona"]);
        let city = kb.type_id("city").unwrap();
        assert!((ann.confidence(city) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn city_country_pairs_annotate_located_in() {
        let kb = covid_kb();
        let ann = kb.annotate_pair([
            ("Berlin", "Germany"),
            ("Manchester", "England"),
            ("Barcelona", "Spain"),
        ]);
        let ((rel, dir), conf) = ann.top().unwrap();
        assert_eq!(kb.relation_name(rel), "located_in");
        assert_eq!(dir, Direction::Forward);
        assert!((conf - 1.0).abs() < 1e-12);
    }

    #[test]
    fn vaccine_approver_pairs_annotate_approved_by() {
        let kb = covid_kb();
        let ann = kb.annotate_pair([("Pfizer", "FDA"), ("JnJ", "FDA")]);
        let ((rel, _), _) = ann.top().unwrap();
        assert_eq!(kb.relation_name(rel), "approved_by");
    }

    #[test]
    fn stats_are_plausible() {
        let kb = covid_kb();
        let s = kb.stats();
        assert!(s.types >= 10);
        assert!(s.entities >= 25);
        assert!(s.fact_pairs >= 25);
        assert!(s.relations >= 4);
    }
}
