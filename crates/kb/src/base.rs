//! The knowledge-base storage: interned types, entities, aliases and facts.

use std::collections::{HashMap, HashSet};

/// Interned identifier of a semantic type (class).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeId(pub u32);

/// Interned identifier of a relationship (property).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelationId(pub u32);

/// Normalize an entity mention for dictionary lookup: trim, lowercase,
/// collapse internal whitespace.
pub(crate) fn normalize(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    let mut last_space = true;
    for c in label.trim().chars() {
        if c.is_whitespace() {
            if !last_space {
                out.push(' ');
                last_space = true;
            }
        } else {
            for lc in c.to_lowercase() {
                out.push(lc);
            }
            last_space = false;
        }
    }
    out
}

/// Builder for a [`KnowledgeBase`].
#[derive(Debug, Default)]
pub struct KbBuilder {
    type_names: Vec<String>,
    type_ids: HashMap<String, TypeId>,
    type_parents: HashMap<TypeId, Vec<TypeId>>,
    rel_names: Vec<String>,
    rel_ids: HashMap<String, RelationId>,
    entity_types: HashMap<String, HashSet<TypeId>>,
    aliases: HashMap<String, String>,
    facts: HashMap<(String, String), HashSet<RelationId>>,
}

impl KbBuilder {
    /// Empty builder.
    pub fn new() -> KbBuilder {
        KbBuilder::default()
    }

    /// Intern a type name, optionally declaring a subclass edge.
    /// Re-declaring an existing type with a new parent adds the edge.
    pub fn add_type(&mut self, name: &str, parent: Option<&str>) -> TypeId {
        let id = self.intern_type(name);
        if let Some(p) = parent {
            let pid = self.intern_type(p);
            let parents = self.type_parents.entry(id).or_default();
            if !parents.contains(&pid) {
                parents.push(pid);
            }
        }
        id
    }

    fn intern_type(&mut self, name: &str) -> TypeId {
        let key = normalize(name);
        if let Some(&id) = self.type_ids.get(&key) {
            return id;
        }
        let id = TypeId(self.type_names.len() as u32);
        self.type_names.push(key.clone());
        self.type_ids.insert(key, id);
        id
    }

    fn intern_relation(&mut self, name: &str) -> RelationId {
        let key = normalize(name);
        if let Some(&id) = self.rel_ids.get(&key) {
            return id;
        }
        let id = RelationId(self.rel_names.len() as u32);
        self.rel_names.push(key.clone());
        self.rel_ids.insert(key, id);
        id
    }

    /// Register an entity with its (leaf) types. Repeated calls merge types.
    pub fn add_entity(&mut self, label: &str, types: &[&str]) {
        let key = normalize(label);
        let ids: Vec<TypeId> = types.iter().map(|t| self.intern_type(t)).collect();
        self.entity_types.entry(key).or_default().extend(ids);
    }

    /// Register an alias (e.g. "USA" → "United States"). Alias resolution is
    /// one level deep, matching how gazetteer aliases work in practice.
    pub fn add_alias(&mut self, alias: &str, canonical: &str) {
        self.aliases.insert(normalize(alias), normalize(canonical));
    }

    /// Record a directed relationship fact `subject --relation--> object`.
    /// Entities are auto-registered (with no types) if unknown.
    pub fn add_fact(&mut self, subject: &str, relation: &str, object: &str) {
        let rel = self.intern_relation(relation);
        let s = normalize(subject);
        let o = normalize(object);
        self.entity_types.entry(s.clone()).or_default();
        self.entity_types.entry(o.clone()).or_default();
        self.facts.entry((s, o)).or_default().insert(rel);
    }

    /// Finalize: computes the ancestor closure of the type lattice.
    pub fn build(self) -> KnowledgeBase {
        // Transitive closure over the (small) type DAG by fixpoint.
        let mut closure: HashMap<TypeId, HashSet<TypeId>> = HashMap::new();
        for id in (0..self.type_names.len() as u32).map(TypeId) {
            let mut seen: HashSet<TypeId> = HashSet::new();
            let mut stack: Vec<TypeId> = vec![id];
            while let Some(t) = stack.pop() {
                if !seen.insert(t) {
                    continue;
                }
                if let Some(ps) = self.type_parents.get(&t) {
                    stack.extend(ps.iter().copied());
                }
            }
            closure.insert(id, seen);
        }
        KnowledgeBase {
            type_names: self.type_names,
            type_ids: self.type_ids,
            ancestors: closure,
            type_parents: self.type_parents,
            rel_names: self.rel_names,
            rel_ids: self.rel_ids,
            entity_types: self.entity_types,
            aliases: self.aliases,
            facts: self.facts,
        }
    }
}

/// Size statistics of a knowledge base.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KbStats {
    /// Number of interned types.
    pub types: usize,
    /// Number of interned relationships.
    pub relations: usize,
    /// Number of entities (including fact-only entities).
    pub entities: usize,
    /// Number of (subject, object) pairs with at least one fact.
    pub fact_pairs: usize,
    /// Number of aliases.
    pub aliases: usize,
}

/// The finalized knowledge base. See the crate docs for the role it plays.
#[derive(Debug, Clone)]
pub struct KnowledgeBase {
    type_names: Vec<String>,
    type_ids: HashMap<String, TypeId>,
    /// Reflexive-transitive ancestor sets.
    ancestors: HashMap<TypeId, HashSet<TypeId>>,
    /// Direct subclass edges (child → parents).
    type_parents: HashMap<TypeId, Vec<TypeId>>,
    rel_names: Vec<String>,
    rel_ids: HashMap<String, RelationId>,
    entity_types: HashMap<String, HashSet<TypeId>>,
    aliases: HashMap<String, String>,
    facts: HashMap<(String, String), HashSet<RelationId>>,
}

impl KnowledgeBase {
    /// Resolve a mention through normalization and (one-level) aliasing to
    /// the canonical entity key, if the entity is known.
    pub fn resolve(&self, mention: &str) -> Option<String> {
        let norm = normalize(mention);
        if self.entity_types.contains_key(&norm) {
            return Some(norm);
        }
        let via_alias = self.aliases.get(&norm)?;
        self.entity_types
            .contains_key(via_alias)
            .then(|| via_alias.clone())
    }

    /// `true` if the mention resolves to a known entity.
    pub fn knows(&self, mention: &str) -> bool {
        self.resolve(mention).is_some()
    }

    /// All types of a mention *including ancestors*; empty if unknown.
    pub fn types_of(&self, mention: &str) -> HashSet<TypeId> {
        let Some(key) = self.resolve(mention) else {
            return HashSet::new();
        };
        let mut out = HashSet::new();
        if let Some(leafs) = self.entity_types.get(&key) {
            for t in leafs {
                if let Some(anc) = self.ancestors.get(t) {
                    out.extend(anc.iter().copied());
                }
            }
        }
        out
    }

    /// Only the *direct* (leaf) types of a mention, without ancestor
    /// expansion — the most specific classification. Schema matching uses
    /// these so that a shared distant ancestor ("place") does not make city
    /// and country columns look alike.
    pub fn leaf_types_of(&self, mention: &str) -> HashSet<TypeId> {
        let Some(key) = self.resolve(mention) else {
            return HashSet::new();
        };
        self.entity_types.get(&key).cloned().unwrap_or_default()
    }

    /// Direct parent types (one subclass step up); empty for roots.
    pub fn parent_types(&self, id: TypeId) -> &[TypeId] {
        self.type_parents.get(&id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Directed relationships from `a` to `b` (after resolution).
    pub fn relations_between(&self, a: &str, b: &str) -> HashSet<RelationId> {
        let (Some(ka), Some(kb)) = (self.resolve(a), self.resolve(b)) else {
            return HashSet::new();
        };
        self.facts.get(&(ka, kb)).cloned().unwrap_or_default()
    }

    /// Name of a type id.
    pub fn type_name(&self, id: TypeId) -> &str {
        &self.type_names[id.0 as usize]
    }

    /// Name of a relationship id.
    pub fn relation_name(&self, id: RelationId) -> &str {
        &self.rel_names[id.0 as usize]
    }

    /// Look up a type id by name.
    pub fn type_id(&self, name: &str) -> Option<TypeId> {
        self.type_ids.get(&normalize(name)).copied()
    }

    /// Look up a relationship id by name.
    pub fn relation_id(&self, name: &str) -> Option<RelationId> {
        self.rel_ids.get(&normalize(name)).copied()
    }

    /// Size statistics.
    pub fn stats(&self) -> KbStats {
        KbStats {
            types: self.type_names.len(),
            relations: self.rel_names.len(),
            entities: self.entity_types.len(),
            fact_pairs: self.facts.len(),
            aliases: self.aliases.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geo_kb() -> KnowledgeBase {
        let mut b = KbBuilder::new();
        b.add_type("place", None);
        b.add_type("city", Some("place"));
        b.add_type("capital", Some("city"));
        b.add_type("country", Some("place"));
        b.add_entity("Berlin", &["capital"]);
        b.add_entity("Boston", &["city"]);
        b.add_entity("Germany", &["country"]);
        b.add_alias("Beantown", "Boston");
        b.add_fact("Berlin", "capital_of", "Germany");
        b.build()
    }

    #[test]
    fn type_closure_includes_ancestors() {
        let kb = geo_kb();
        let berlin = kb.types_of("Berlin");
        for t in ["capital", "city", "place"] {
            assert!(
                berlin.contains(&kb.type_id(t).unwrap()),
                "Berlin should be a {t}"
            );
        }
        assert!(!berlin.contains(&kb.type_id("country").unwrap()));
    }

    #[test]
    fn normalization_and_aliases_resolve() {
        let kb = geo_kb();
        assert!(kb.knows("  BERLIN "));
        assert!(kb.knows("beantown"));
        assert_eq!(kb.resolve("Beantown").unwrap(), "boston");
        assert!(!kb.knows("Atlantis"));
        assert!(kb.types_of("Atlantis").is_empty());
    }

    #[test]
    fn whitespace_collapses_in_normalization() {
        assert_eq!(normalize("  New   Delhi "), "new delhi");
        assert_eq!(normalize("ABC"), "abc");
    }

    #[test]
    fn parent_types_are_one_step() {
        let kb = geo_kb();
        let capital = kb.type_id("capital").unwrap();
        let city = kb.type_id("city").unwrap();
        let place = kb.type_id("place").unwrap();
        assert_eq!(kb.parent_types(capital), &[city]);
        assert_eq!(kb.parent_types(city), &[place]);
        assert!(kb.parent_types(place).is_empty());
    }

    #[test]
    fn leaf_types_exclude_ancestors() {
        let kb = geo_kb();
        let leafs = kb.leaf_types_of("Berlin");
        assert_eq!(leafs.len(), 1);
        assert!(leafs.contains(&kb.type_id("capital").unwrap()));
        assert!(kb.leaf_types_of("Atlantis").is_empty());
        // alias resolution applies
        assert_eq!(kb.leaf_types_of("beantown"), kb.leaf_types_of("Boston"));
    }

    #[test]
    fn facts_are_directed() {
        let kb = geo_kb();
        let rel = kb.relation_id("capital_of").unwrap();
        assert!(kb.relations_between("Berlin", "Germany").contains(&rel));
        assert!(kb.relations_between("Germany", "Berlin").is_empty());
        assert!(kb.relations_between("Berlin", "Atlantis").is_empty());
    }

    #[test]
    fn fact_entities_are_auto_registered() {
        let mut b = KbBuilder::new();
        b.add_fact("pfizer", "approved_by", "fda");
        let kb = b.build();
        assert!(kb.knows("Pfizer"));
        assert!(kb.knows("FDA"));
        // ... but with no types.
        assert!(kb.types_of("pfizer").is_empty());
    }

    #[test]
    fn repeated_entity_registration_merges_types() {
        let mut b = KbBuilder::new();
        b.add_type("a", None);
        b.add_type("b", None);
        b.add_entity("x", &["a"]);
        b.add_entity("x", &["b"]);
        let kb = b.build();
        let ts = kb.types_of("x");
        assert_eq!(ts.len(), 2);
    }

    #[test]
    fn diamond_hierarchy_closure_terminates() {
        let mut b = KbBuilder::new();
        b.add_type("top", None);
        b.add_type("l", Some("top"));
        b.add_type("r", Some("top"));
        b.add_type("bottom", Some("l"));
        b.add_type("bottom", Some("r"));
        b.add_entity("e", &["bottom"]);
        let kb = b.build();
        assert_eq!(kb.types_of("e").len(), 4);
    }

    #[test]
    fn cyclic_hierarchy_terminates() {
        // Defensive: closure must not loop on malformed (cyclic) input.
        let mut b = KbBuilder::new();
        b.add_type("a", Some("b"));
        b.add_type("b", Some("a"));
        b.add_entity("e", &["a"]);
        let kb = b.build();
        assert_eq!(kb.types_of("e").len(), 2);
    }

    #[test]
    fn stats_count_everything() {
        let kb = geo_kb();
        let s = kb.stats();
        assert_eq!(s.types, 4);
        assert_eq!(s.relations, 1);
        assert_eq!(s.entities, 3);
        assert_eq!(s.fact_pairs, 1);
        assert_eq!(s.aliases, 1);
    }
}
