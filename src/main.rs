//! `dialite` — a command-line interface to the DIALITE pipeline, standing in
//! for the paper's interactive web demo (§2.4). Users point it at a
//! directory of CSV files (the data lake) and drive the three stages:
//!
//! ```text
//! dialite demo
//! dialite discover  --lake DIR|--data-dir DIR --query Q.csv [--column N] [--k K] [--shards N] [--max-postings P] [--metadata]
//! dialite serve     --lake DIR|--data-dir DIR --query Q.csv [--column N] [--clients N] [--requests M] [--shards N] [--max-postings P] [--metadata]
//! dialite telemetry --lake DIR --query Q.csv [--column N] [--k K] [--requests M] [--shards N] [--max-postings P] [--metadata]
//! dialite integrate --lake DIR --tables a,b,c [--operator fd|outer-join|inner-join|union]
//! dialite analyze   --table T.csv --corr colA,colB
//! dialite generate  --prompt "covid cases" [--rows N] [--cols N]
//! dialite snapshot  --data-dir DIR [--lake CSVDIR] [--shards N]
//! ```
//!
//! `--shards N` stripes the maintained discovery index across N shards
//! (queries fan out in parallel and merge; `--shards 1`, the default, is
//! byte-for-byte the single index). `telemetry` replays the query and
//! dumps the merged discovery telemetry window as one JSON object.
//!
//! `--max-postings P` caps the posting entries the exact top-k path may
//! scan per query (the cost-based planner's budget knob, default 2²⁰;
//! `unlimited` removes the cap, making the stage byte-identical to the
//! exhaustive posting merge).
//!
//! `--metadata` enables the third, metadata-aware discovery leg: tables
//! are retrieved by header/annotation match (column-name token overlap)
//! instead of cell values, so sparse or value-disjoint tables that share
//! a schema still surface. Results appear as a separate `[metadata]`
//! engine block alongside `[santos]` and `[lsh-ensemble]`.
//!
//! `--data-dir DIR` points at a **durable** lake: a checksummed snapshot
//! plus commitlog that survive restarts. `dialite snapshot` ingests CSVs
//! into it (appending to the log) and writes a checkpoint — including the
//! discovery index's MinHash sketches, so the next open warm-starts
//! without re-hashing the lake. `discover`/`serve` with `--data-dir`
//! recover snapshot + log tail and serve the recovered state.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

use dialite::align::{HolisticMatcher, KbAnnotator};
use dialite::analyze::{column_summary, pearson_columns};
use dialite::datagen::TableSynth;
use dialite::discovery::DiscoveryService;
use dialite::discovery::TableQuery;
use dialite::discovery::{LakeIndexConfig, MetadataConfig};
use dialite::kb::curated::covid_kb;
use dialite::pipeline::{demo, DurableConfig, DurableLake, Pipeline};
use dialite::table::{read_csv_str, CsvOptions, DataLake, Table};
use dialite_integrate::{
    AliteFd, InnerJoinIntegrator, Integrator, OuterJoinIntegrator, OuterUnionIntegrator,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("dialite: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  dialite demo
  dialite discover  --lake DIR|--data-dir DIR --query FILE.csv [--column N] [--k K] [--shards N] [--max-postings P|unlimited] [--metadata]
  dialite serve     --lake DIR|--data-dir DIR --query FILE.csv [--column N] [--k K] [--clients N] [--requests M] [--shards N] [--max-postings P|unlimited] [--metadata]
  dialite telemetry --lake DIR --query FILE.csv [--column N] [--k K] [--requests M] [--shards N] [--max-postings P|unlimited] [--metadata]
  dialite integrate --lake DIR --tables a,b,c [--operator fd|outer-join|inner-join|union]
  dialite analyze   --table FILE.csv [--corr colA,colB] [--summary]
  dialite generate  --prompt TEXT [--rows N] [--cols N] [--seed S]
  dialite snapshot  --data-dir DIR [--lake CSVDIR] [--shards N]";

/// Minimal `--flag value` argument reader.
fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn load_lake(dir: &str) -> Result<DataLake, String> {
    let mut lake = DataLake::new();
    let n = lake
        .load_dir(Path::new(dir))
        .map_err(|e| format!("loading lake from {dir}: {e}"))?;
    if n == 0 {
        return Err(format!("no .csv files found in {dir}"));
    }
    Ok(lake)
}

/// Parse `--shards` (default 1; the pipeline clamps 0 up to 1). Shard ids
/// are `u32` throughout the routing layer, so anything past `u32::MAX` is
/// a usage error here rather than a panic deep inside the router.
fn shards_flag(args: &[String]) -> Result<usize, String> {
    let shards: usize = flag(args, "--shards")
        .unwrap_or("1")
        .parse()
        .map_err(|_| "--shards must be a number".to_string())?;
    if u32::try_from(shards).is_err() {
        return Err(format!(
            "--shards {shards} is out of range (max {})",
            u32::MAX
        ));
    }
    Ok(shards)
}

/// Build the index configuration for the commands that maintain one:
/// defaults everywhere, plus the third header-matching discovery leg
/// when `--metadata` is given.
fn index_config(args: &[String]) -> LakeIndexConfig {
    let mut config = LakeIndexConfig::default();
    if args.iter().any(|a| a == "--metadata") {
        config.metadata = Some(MetadataConfig::default());
    }
    config
}

/// Apply `--max-postings` to the pipeline's discovery budget: the cap on
/// posting entries the cost-based exact top-k path may scan per query.
/// Absent, the default budget (2²⁰ entries) stands; `unlimited` removes
/// the cap so the exact path is byte-identical to the exhaustive merge.
fn apply_max_postings(args: &[String], pipeline: &mut Pipeline) -> Result<(), String> {
    let Some(raw) = flag(args, "--max-postings") else {
        return Ok(());
    };
    let postings = match raw {
        "unlimited" => usize::MAX,
        n => n
            .parse()
            .map_err(|_| "--max-postings must be a number or 'unlimited'".to_string())?,
    };
    let mut budget = pipeline.discovery_budget();
    budget.joinable = budget.joinable.with_max_postings(postings);
    pipeline.set_discovery_budget(budget);
    Ok(())
}

/// Resolve the lake for a read command. `--data-dir` opens the durable
/// store (recovering snapshot + commitlog tail and warm-starting the
/// index from persisted sketches); `--lake` loads CSVs fresh and builds
/// cold. Exactly one must be given.
fn open_lake_source(
    args: &[String],
    shards: usize,
) -> Result<(Pipeline, DataLake, Option<DurableLake>), String> {
    match (flag(args, "--data-dir"), flag(args, "--lake")) {
        (Some(dir), None) => {
            let (pipeline, lake, durable) = Pipeline::open_durable_configured(
                Path::new(dir),
                shards,
                DurableConfig::default(),
                index_config(args),
            )
            .map_err(|e| format!("opening durable lake at {dir}: {e}"))?;
            if lake.is_empty() {
                return Err(format!(
                    "durable lake at {dir} is empty; seed it with \
                     `dialite snapshot --data-dir {dir} --lake CSVDIR`"
                ));
            }
            Ok((pipeline, lake, Some(durable)))
        }
        (None, Some(dir)) => {
            let lake = load_lake(dir)?;
            let pipeline = Pipeline::demo_configured(&lake, shards, index_config(args));
            Ok((pipeline, lake, None))
        }
        (Some(_), Some(_)) => Err("--data-dir and --lake are mutually exclusive here".to_string()),
        (None, None) => Err("--lake DIR or --data-dir DIR is required".to_string()),
    }
}

/// Turn a loaded query table into a [`TableQuery`], honoring `--column`.
fn query_from(args: &[String], table: Table) -> Result<TableQuery, String> {
    match flag(args, "--column") {
        Some(c) => {
            let col: usize = c.parse().map_err(|_| "--column must be a number")?;
            if col >= table.column_count() {
                return Err(format!("--column {col} out of range"));
            }
            Ok(TableQuery::with_column(table, col))
        }
        None => Ok(TableQuery::new(table)),
    }
}

fn load_table(path: &str) -> Result<Table, String> {
    let text =
        std::fs::read_to_string(PathBuf::from(path)).map_err(|e| format!("reading {path}: {e}"))?;
    let name = Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("query");
    read_csv_str(name, &text, &CsvOptions::default()).map_err(|e| e.to_string())
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("demo") => cmd_demo(),
        Some("discover") => cmd_discover(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("telemetry") => cmd_telemetry(&args[1..]),
        Some("integrate") => cmd_integrate(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("generate") => cmd_generate(&args[1..]),
        Some("snapshot") => cmd_snapshot(&args[1..]),
        Some(other) => Err(format!("unknown command '{other}'")),
        None => Err("missing command".to_string()),
    }
}

fn cmd_demo() -> Result<(), String> {
    let lake = demo::covid_lake();
    let pipeline = Pipeline::demo_default(&lake);
    let query = TableQuery::with_column(demo::fig2_query(), 1);
    println!("Query table:\n{}", query.table);
    let run = pipeline.run(&lake, &query).map_err(|e| e.to_string())?;
    println!("{}", run.report());
    print_telemetry(&pipeline);
    Ok(())
}

/// Print the budgeted discovery stage's rolling telemetry, if the
/// pipeline maintains an index (the demo and discover commands do).
fn print_telemetry(pipeline: &Pipeline) {
    if let Some(telemetry) = pipeline.telemetry() {
        println!("\n== Discovery telemetry ==");
        println!("{}", telemetry.summary());
    }
}

fn cmd_discover(args: &[String]) -> Result<(), String> {
    let (pipeline, lake, _durable) = open_lake_source(args, shards_flag(args)?)?;
    let table = load_table(flag(args, "--query").ok_or("--query FILE is required")?)?;
    let k: usize = flag(args, "--k")
        .unwrap_or("5")
        .parse()
        .map_err(|_| "--k must be a number")?;
    let query = query_from(args, table)?;
    let mut pipeline = pipeline;
    pipeline.set_top_k(k);
    apply_max_postings(args, &mut pipeline)?;
    let run = pipeline.run(&lake, &query).map_err(|e| e.to_string())?;
    println!("{}", run.report());
    print_telemetry(&pipeline);
    Ok(())
}

/// Replay the query through the (optionally sharded) discovery stage and
/// dump the merged telemetry window as one JSON object on stdout — the
/// machine-readable sibling of the human summary the other commands print.
fn cmd_telemetry(args: &[String]) -> Result<(), String> {
    let lake = load_lake(flag(args, "--lake").ok_or("--lake DIR is required")?)?;
    let table = load_table(flag(args, "--query").ok_or("--query FILE is required")?)?;
    let k: usize = flag(args, "--k")
        .unwrap_or("5")
        .parse()
        .map_err(|_| "--k must be a number")?;
    let requests: usize = flag(args, "--requests")
        .unwrap_or("8")
        .parse()
        .map_err(|_| "--requests must be a number")?;
    let query = query_from(args, table)?;
    let mut pipeline = Pipeline::demo_configured(&lake, shards_flag(args)?, index_config(args));
    pipeline.set_top_k(k);
    apply_max_postings(args, &mut pipeline)?;
    for _ in 0..requests.max(1) {
        pipeline.discover_stage(&lake, &query);
    }
    let json = pipeline
        .telemetry_json()
        .expect("demo pipeline maintains an index");
    println!("{json}");
    Ok(())
}

/// Serve the query from N concurrent clients against a `DiscoveryService`
/// over the lake — the CLI face of discovery-as-a-service: admission
/// control, version-stamped responses and a tail-latency report.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    let shards = shards_flag(args)?;
    let (pipeline, lake, durable) = open_lake_source(args, shards)?;
    let table = load_table(flag(args, "--query").ok_or("--query FILE is required")?)?;
    let k: usize = flag(args, "--k")
        .unwrap_or("5")
        .parse()
        .map_err(|_| "--k must be a number")?;
    let clients: usize = flag(args, "--clients")
        .unwrap_or("8")
        .parse()
        .map_err(|_| "--clients must be a number")?;
    let requests: usize = flag(args, "--requests")
        .unwrap_or("64")
        .parse()
        .map_err(|_| "--requests must be a number")?;
    let query = query_from(args, table)?;
    let mut pipeline = pipeline;
    pipeline.set_top_k(k);
    apply_max_postings(args, &mut pipeline)?;
    // With --data-dir the service keeps write-ahead durability (warm
    // index handover included); with --lake it serves in memory only.
    let durable_service;
    let plain_service;
    let service: &DiscoveryService = match durable {
        Some(d) => {
            durable_service = pipeline
                .serve_durable(lake, 1024, d)
                .expect("demo pipeline maintains an index");
            durable_service.service()
        }
        None => {
            plain_service = pipeline
                .serve(lake, 1024)
                .expect("demo pipeline maintains an index");
            &plain_service
        }
    };

    let done = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..clients.max(1) {
            scope.spawn(|| loop {
                let i = done.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= requests {
                    break;
                }
                let _ = service.query_default(&query);
            });
        }
    });

    let response = service
        .query_default(&query)
        .map_err(|e| format!("serving failed: {e}"))?;
    println!("Results (lake version {}):", response.version);
    for (engine, hits) in &response.results {
        println!("  [{engine}]");
        for d in hits {
            println!("    {:<24} score {:.3}", d.table, d.score);
        }
    }
    let t = service.telemetry();
    println!(
        "\n== Serving telemetry ({clients} clients, {requests} requests, {} shard(s)) ==",
        service.shard_count()
    );
    println!("{}", t.summary());
    Ok(())
}

/// Ingest CSVs into the durable lake (each upsert appended to the
/// commitlog) and write a checkpoint — snapshot + index sketches — so
/// subsequent `--data-dir` opens warm-start from it.
fn cmd_snapshot(args: &[String]) -> Result<(), String> {
    let dir = flag(args, "--data-dir").ok_or("--data-dir DIR is required")?;
    let shards = shards_flag(args)?;
    let (pipeline, mut lake, mut durable) =
        Pipeline::open_durable(Path::new(dir), shards, DurableConfig::default())
            .map_err(|e| format!("opening durable lake at {dir}: {e}"))?;
    let mut ingested = 0usize;
    if let Some(csv_dir) = flag(args, "--lake") {
        let fresh = load_lake(csv_dir)?;
        for t in fresh.tables() {
            let since = lake.version();
            lake.upsert(t.as_ref().clone());
            durable
                .append_since(&lake, since)
                .map_err(|e| format!("appending to commitlog: {e}"))?;
            ingested += 1;
        }
    }
    if lake.is_empty() {
        return Err(format!(
            "nothing to snapshot: durable lake at {dir} is empty and no --lake CSVDIR was given"
        ));
    }
    pipeline
        .snapshot(&lake, &mut durable)
        .map_err(|e| format!("writing snapshot: {e}"))?;
    println!(
        "snapshot written to {dir}: {} tables at lake version {} ({} ingested this run)",
        lake.len(),
        lake.version(),
        ingested
    );
    Ok(())
}

fn parse_operator(name: Option<&str>) -> Result<Box<dyn Integrator>, String> {
    Ok(match name.unwrap_or("fd") {
        "fd" => Box::new(AliteFd::default()),
        "outer-join" => Box::new(OuterJoinIntegrator),
        "inner-join" => Box::new(InnerJoinIntegrator),
        "union" => Box::new(OuterUnionIntegrator { subsume: true }),
        other => return Err(format!("unknown operator '{other}'")),
    })
}

fn cmd_integrate(args: &[String]) -> Result<(), String> {
    let lake = load_lake(flag(args, "--lake").ok_or("--lake DIR is required")?)?;
    let names = flag(args, "--tables").ok_or("--tables a,b,c is required")?;
    let operator = parse_operator(flag(args, "--operator"))?;
    let tables: Vec<Arc<Table>> = names
        .split(',')
        .map(|n| lake.require(n.trim()).map_err(|e| e.to_string()))
        .collect::<Result<_, _>>()?;
    let refs: Vec<&Table> = tables.iter().map(|t| t.as_ref()).collect();
    let matcher =
        HolisticMatcher::default().with_annotator(Arc::new(KbAnnotator::new(Arc::new(covid_kb()))));
    let alignment = matcher.align(&refs);
    println!("Integration IDs:");
    for (t, table) in refs.iter().enumerate() {
        for c in 0..table.column_count() {
            println!(
                "  {}.{} → {}",
                table.name(),
                table.schema().column(c).name,
                alignment.name_of(alignment.id_of(t, c))
            );
        }
    }
    let out = operator
        .integrate(&refs, &alignment)
        .map_err(|e| e.to_string())?;
    println!("\n{}", out.table());
    Ok(())
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let table = load_table(flag(args, "--table").ok_or("--table FILE is required")?)?;
    if let Some(pair) = flag(args, "--corr") {
        let (a, b) = pair.split_once(',').ok_or("--corr expects colA,colB")?;
        let ca = table
            .column_index(a.trim())
            .ok_or_else(|| format!("unknown column '{a}'"))?;
        let cb = table
            .column_index(b.trim())
            .ok_or_else(|| format!("unknown column '{b}'"))?;
        match pearson_columns(&table, ca, cb) {
            Some(r) => println!("pearson({a}, {b}) = {r:.4}"),
            None => println!("pearson({a}, {b}) undefined (insufficient pairs or zero variance)"),
        }
    }
    // Summary is the default action (and runs alongside --corr with --summary).
    if flag(args, "--corr").is_none() || args.iter().any(|a| a == "--summary") {
        println!("{table}");
        for c in 0..table.column_count() {
            let s = column_summary(&table, c).map_err(|e| e.to_string())?;
            println!(
                "{:<20} rows={} nulls={} distinct={} mean={} min={} max={}",
                s.column,
                s.rows,
                s.nulls,
                s.distinct,
                s.mean.map_or("-".into(), |x| format!("{x:.3}")),
                s.min.map_or("-".into(), |x| format!("{x:.3}")),
                s.max.map_or("-".into(), |x| format!("{x:.3}")),
            );
        }
    }
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let prompt = flag(args, "--prompt").ok_or("--prompt TEXT is required")?;
    let rows: usize = flag(args, "--rows")
        .unwrap_or("5")
        .parse()
        .map_err(|_| "--rows must be a number")?;
    let cols: usize = flag(args, "--cols")
        .unwrap_or("5")
        .parse()
        .map_err(|_| "--cols must be a number")?;
    let seed: u64 = flag(args, "--seed")
        .unwrap_or("42")
        .parse()
        .map_err(|_| "--seed must be a number")?;
    let table = TableSynth::new(seed).generate(prompt, rows, cols);
    print!("{}", dialite::table::table_to_csv(&table));
    Ok(())
}
