//! # dialite
//!
//! Facade crate for `dialite-rs`: a from-scratch Rust reproduction of
//! **DIALITE: Discover, Align and Integrate Open Data Tables**
//! (SIGMOD-Companion 2023).
//!
//! This crate re-exports the full public API of the workspace:
//!
//! * [`table`] — typed tables, CSV I/O, the [`table::DataLake`] store;
//! * [`text`] — tokenization and string/vector similarity;
//! * [`kb`] — the mini knowledge base used by semantic discovery;
//! * [`minhash`] — MinHash signatures and the LSH Ensemble index;
//! * [`discovery`] — unionable/joinable table search (SANTOS-style, LSH
//!   Ensemble, exact overlap, user-defined);
//! * [`align`] — ALITE's holistic schema matching (integration IDs);
//! * [`integrate`] — full disjunction engines and baseline operators;
//! * [`analyze`] — null-aware analytics and entity resolution;
//! * [`datagen`] — synthetic lakes, benchmark workloads and the
//!   GPT-style query-table generator;
//! * [`pipeline`] — the DIALITE pipeline itself (Discover → Align &
//!   Integrate → Analyze).
//!
//! ## Quickstart
//!
//! The whole pipeline on the bundled COVID demo lake (paper Figs. 2–3;
//! `examples/quickstart.rs` is the narrated version):
//!
//! ```
//! use dialite::discovery::TableQuery;
//! use dialite::pipeline::{demo, Pipeline};
//! use dialite::table::fixtures;
//!
//! let lake = demo::covid_lake();
//! let pipeline = Pipeline::demo_default(&lake);
//! let query = TableQuery::with_column(fixtures::fig2_query(), 1); // City
//! let run = pipeline.run(&lake, &query).unwrap();
//! assert!(run.integrated.table().same_content(&fixtures::fig3_expected()));
//! ```

pub use dialite_align as align;
pub use dialite_analyze as analyze;
pub use dialite_core as pipeline;
pub use dialite_datagen as datagen;
pub use dialite_discovery as discovery;
pub use dialite_integrate as integrate;
pub use dialite_kb as kb;
pub use dialite_minhash as minhash;
pub use dialite_table as table;
pub use dialite_text as text;

// Most-used items at the crate root for ergonomic imports.
pub use dialite_table::{DataLake, Table, Value};
