//! Smoke test: every file in `examples/` must build *and* run to
//! completion, so examples cannot silently rot. Each test shells out to
//! `cargo run --example` (reusing the build cache `cargo test` already
//! populated — `cargo test` compile-checks examples by default).

use std::path::Path;
use std::process::Command;
use std::sync::Mutex;

/// The examples this suite runs; `all_examples_are_covered` keeps the
/// list honest against the `examples/` directory.
const EXAMPLES: &[&str] = &[
    "csv_lake",
    "custom_components",
    "lake_exploration",
    "quickstart",
    "vaccine_er",
];

/// Serialize `cargo run` invocations: concurrent cargo processes would
/// just contend on the build-directory lock.
static CARGO_LOCK: Mutex<()> = Mutex::new(());

fn run_example(name: &str) {
    // A failed example panics while holding the guard; the lock only
    // serializes (guards no state), so poisoning must not cascade.
    let _guard = CARGO_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let output = Command::new(cargo)
        .args(["run", "--quiet", "--example", name])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn cargo for example {name}: {e}"));
    assert!(
        output.status.success(),
        "example {name} exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
}

#[test]
fn all_examples_are_covered() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples");
    let mut on_disk: Vec<String> = std::fs::read_dir(dir)
        .expect("examples/ directory exists")
        .filter_map(|e| {
            let path = e.expect("readable dir entry").path();
            (path.extension().is_some_and(|x| x == "rs"))
                .then(|| path.file_stem().unwrap().to_string_lossy().into_owned())
        })
        .collect();
    on_disk.sort();
    assert_eq!(
        on_disk, EXAMPLES,
        "examples/ and the smoke-test list diverged; add a runner below"
    );
}

#[test]
fn quickstart_runs() {
    run_example("quickstart");
}

#[test]
fn csv_lake_runs() {
    run_example("csv_lake");
}

#[test]
fn custom_components_runs() {
    run_example("custom_components");
}

#[test]
fn lake_exploration_runs() {
    run_example("lake_exploration");
}

#[test]
fn vaccine_er_runs() {
    run_example("vaccine_er");
}
