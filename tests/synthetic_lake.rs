//! Integration tests on the synthetic benchmark lake: discovery finds the
//! ground-truth relatives, the KB-assisted matcher beats the header
//! baseline under scrambled headers, and the pipeline survives dirty data.

use std::collections::HashSet;
use std::sync::Arc;

use dialite::align::{Alignment, HolisticMatcher, KbAnnotator};
use dialite::datagen::lake::{LakeSpec, SyntheticLake};
use dialite::datagen::metrics::{alignment_pair_f1, precision_recall_at_k};
use dialite::discovery::{
    Discovery, ExactOverlapDiscovery, LshEnsembleConfig, LshEnsembleDiscovery, TableQuery,
};
use dialite::table::Table;
use dialite_integrate::{AliteFd, Integrator};

fn spec(scramble: bool) -> LakeSpec {
    LakeSpec {
        universes: 4,
        fragments_per_universe: 4,
        rows_per_universe: 60,
        categorical_cols: 2,
        numeric_cols: 1,
        null_rate: 0.05,
        value_dirt_rate: 0.0,
        scramble_headers: scramble,
        seed: 1234,
    }
}

#[test]
fn exact_overlap_discovery_finds_relatives() {
    let synth = SyntheticLake::generate(&spec(false));
    let engine = ExactOverlapDiscovery::build(&synth.lake, true);
    let mut recall_sum = 0.0;
    let mut n = 0usize;
    for table in synth.lake.tables() {
        let truth: HashSet<String> = synth.truth.related(table.name());
        if truth.is_empty() {
            continue;
        }
        let hits = engine.discover(&TableQuery::new(table.as_ref().clone()), 8);
        let ranked: Vec<String> = hits.into_iter().map(|d| d.table).collect();
        let (_, r) = precision_recall_at_k(&ranked, &truth, 8);
        recall_sum += r;
        n += 1;
    }
    let recall = recall_sum / n as f64;
    assert!(
        recall > 0.9,
        "exact overlap should find nearly all relatives: {recall}"
    );
}

#[test]
fn lsh_ensemble_discovery_has_high_recall_on_key_joins() {
    let synth = SyntheticLake::generate(&spec(false));
    let engine = LshEnsembleDiscovery::build(
        &synth.lake,
        LshEnsembleConfig {
            threshold: 0.3,
            ..LshEnsembleConfig::default()
        },
    );
    let mut recall_sum = 0.0;
    let mut n = 0usize;
    for table in synth.lake.tables() {
        // Query on the fragment's key column (original column 0).
        let key_col = (0..table.column_count())
            .find(|&c| synth.truth.column_class[&(table.name().to_string(), c)].1 == 0);
        let Some(key_col) = key_col else { continue };
        let truth: HashSet<String> = synth.truth.related(table.name());
        if truth.is_empty() {
            continue;
        }
        let q = TableQuery::with_column(table.as_ref().clone(), key_col);
        let hits = engine.discover(&q, 8);
        let ranked: Vec<String> = hits.into_iter().map(|d| d.table).collect();
        let (_, r) = precision_recall_at_k(&ranked, &truth, 8);
        recall_sum += r;
        n += 1;
    }
    let recall = recall_sum / n as f64;
    assert!(recall > 0.7, "key-column joins should be found: {recall}");
}

#[test]
fn kb_matcher_beats_header_baseline_under_scrambling() {
    let synth = SyntheticLake::generate(&spec(true));
    let kb = Arc::new(synth.truth.kb.clone());
    let tables_owned: Vec<Table> = synth.lake.tables().map(|t| t.as_ref().clone()).collect();

    let mut holistic_f1 = 0.0;
    let mut header_f1 = 0.0;
    let mut n = 0.0;
    for u in 0..4 {
        let set: Vec<&Table> = tables_owned
            .iter()
            .filter(|t| synth.truth.universe_of[t.name()] == u)
            .collect();
        let matcher =
            HolisticMatcher::default().with_annotator(Arc::new(KbAnnotator::new(kb.clone())));
        let (_, _, f_h) = alignment_pair_f1(&set, &matcher.align(&set), &synth.truth);
        let (_, _, f_b) = alignment_pair_f1(&set, &Alignment::by_headers(&set), &synth.truth);
        holistic_f1 += f_h;
        header_f1 += f_b;
        n += 1.0;
    }
    holistic_f1 /= n;
    header_f1 /= n;
    assert!(
        holistic_f1 > header_f1 + 0.3,
        "holistic {holistic_f1:.3} must dominate header baseline {header_f1:.3} on scrambled headers"
    );
    assert!(holistic_f1 > 0.6, "holistic F1 too low: {holistic_f1:.3}");
}

#[test]
fn fd_over_synthetic_fragments_is_lossless() {
    // Integrating a universe's fragments must preserve every input fact.
    let synth = SyntheticLake::generate(&LakeSpec {
        universes: 1,
        fragments_per_universe: 3,
        rows_per_universe: 25,
        categorical_cols: 2,
        numeric_cols: 0,
        null_rate: 0.0,
        value_dirt_rate: 0.0,
        scramble_headers: false,
        seed: 77,
    });
    let tables_owned: Vec<Table> = synth.lake.tables().map(|t| t.as_ref().clone()).collect();
    let refs: Vec<&Table> = tables_owned.iter().collect();
    let al = Alignment::by_headers(&refs);
    let fd = AliteFd::default().integrate(&refs, &al).unwrap();

    // Every input tuple must be subsumed by some output row.
    for (t, table) in refs.iter().enumerate() {
        for row in table.rows() {
            let slots: Vec<usize> = (0..table.column_count())
                .map(|c| {
                    let name = al.name_of(al.id_of(t, c));
                    fd.table().column_index(name).unwrap()
                })
                .collect();
            let covered = fd.table().rows().any(|orow| {
                row.iter()
                    .enumerate()
                    .all(|(c, v)| v.is_null() || orow[slots[c]] == *v)
            });
            assert!(covered, "lost tuple {row:?} of fragment {t}");
        }
    }
}
