//! Cross-crate integration tests: the full pipeline from CSV ingest through
//! discovery, alignment, integration and analysis.

use std::sync::Arc;

use dialite::analyze::agg::Aggregate;
use dialite::analyze::{pearson_columns, EntityResolver, GroupBy};
use dialite::discovery::TableQuery;
use dialite::pipeline::Pipeline;
use dialite::table::fixtures;
use dialite::table::{read_csv_str, CsvOptions, DataLake, Value};
use dialite_align::Alignment;
use dialite_integrate::{AliteFd, Integrator, OuterJoinIntegrator};

#[test]
fn pipeline_from_csv_sources() {
    // Ingest the paper's tables from CSV text, as demo users upload them.
    let t1 = read_csv_str(
        "T1",
        "Country,City,Vaccination Rate\n\
         Germany,Berlin,0.63\n\
         England,Manchester,0.78\n\
         Spain,Barcelona,0.82\n",
        &CsvOptions::default(),
    )
    .unwrap();
    let t2 = read_csv_str(
        "T2",
        "Country,City,Vaccination Rate\n\
         Canada,Toronto,0.83\n\
         Mexico,Mexico City,\n\
         USA,Boston,0.62\n",
        &CsvOptions::default(),
    )
    .unwrap();
    let t3 = read_csv_str(
        "T3",
        "City,Total Cases,Death Rate\n\
         Berlin,1400000,147\n\
         Barcelona,2680000,275\n\
         Boston,263000,335\n\
         New Delhi,2000000,158\n",
        &CsvOptions::default(),
    )
    .unwrap();

    let mut lake = DataLake::new();
    lake.add(t2).unwrap();
    lake.add(t3).unwrap();

    let pipeline = Pipeline::demo_default(&lake);
    let run = pipeline
        .run(&lake, &TableQuery::with_column(t1, 1))
        .unwrap();
    assert!(
        run.integrated
            .table()
            .same_content(&fixtures::fig3_expected()),
        "CSV-ingested pipeline must still reproduce Fig. 3:\n{}",
        run.integrated.table()
    );
}

#[test]
fn fig8_contrast_end_to_end() {
    // The whole §3.2 story in one test: FD + ER succeeds where outer join
    // + ER fails.
    let (t4, t5, t6) = fixtures::fig7_tables();
    let tables = vec![&t4, &t5, &t6];
    let al = Alignment::by_headers(&tables);

    let fd = AliteFd::default().integrate(&tables, &al).unwrap();
    let oj = OuterJoinIntegrator.integrate(&tables, &al).unwrap();
    let er = EntityResolver::demo_default();

    let fd_er = er.resolve(fd.table());
    let oj_er = er.resolve(oj.table());

    assert_eq!(fd_er.entity_count(), 2, "Fig. 8(d)");
    assert_eq!(oj_er.table.row_count(), 4, "Fig. 8(c)");

    // The J&J entity is complete only on the FD side.
    let jj_complete = |t: &dialite::table::Table| {
        t.rows().any(|r| {
            matches!(&r[0], Value::Text(s) if s.contains('J')) && r.iter().all(|v| !v.is_null())
        })
    };
    assert!(jj_complete(&fd_er.table));
    assert!(!jj_complete(&oj_er.table));
}

#[test]
fn aggregation_over_pipeline_output() {
    let lake = fixtures::covid_lake();
    let pipeline = Pipeline::demo_default(&lake);
    let run = pipeline
        .run(&lake, &TableQuery::with_column(fixtures::fig2_query(), 1))
        .unwrap();
    let out = run.integrated.table();
    let agg = GroupBy::new("Country")
        .aggregate("City", Aggregate::Count)
        .aggregate("Vaccination Rate", Aggregate::Mean)
        .run(out)
        .unwrap();
    // 6 countries + the produced-null group for New Delhi.
    assert_eq!(agg.row_count(), 7);
    let germany = agg
        .rows()
        .find(|r| r[0] == Value::Text("Germany".into()))
        .unwrap();
    assert_eq!(germany[1], Value::Int(1));
    assert_eq!(germany[2], Value::Float(0.63));
}

#[test]
fn alignment_from_matcher_feeds_integration_like_by_headers() {
    // The holistic matcher (KB-assisted) and the header oracle agree on the
    // demo tables, so FD results coincide.
    use dialite::align::{HolisticMatcher, KbAnnotator};
    use dialite::kb::curated::covid_kb;

    let t1 = fixtures::fig2_query();
    let t2 = fixtures::fig2_unionable();
    let t3 = fixtures::fig2_joinable();
    let tables = vec![&t1, &t2, &t3];

    let matcher =
        HolisticMatcher::default().with_annotator(Arc::new(KbAnnotator::new(Arc::new(covid_kb()))));
    let holistic = matcher.align(&tables);
    let fd_h = AliteFd::default().integrate(&tables, &holistic).unwrap();

    let by_headers = Alignment::by_headers(&tables);
    let fd_o = AliteFd::default().integrate(&tables, &by_headers).unwrap();

    assert!(fd_h.table().same_content(fd_o.table()));
}

#[test]
fn example3_correlations_from_scratch() {
    let lake = fixtures::covid_lake();
    let pipeline = Pipeline::demo_default(&lake);
    let run = pipeline
        .run(&lake, &TableQuery::with_column(fixtures::fig2_query(), 1))
        .unwrap();
    let out = run.integrated.table();
    let rate = out.column_index("Vaccination Rate").unwrap();
    let death = out.column_index("Death Rate").unwrap();
    let cases = out.column_index("Total Cases").unwrap();
    assert!((pearson_columns(out, rate, death).unwrap() - 0.16).abs() < 0.01);
    assert!((pearson_columns(out, cases, rate).unwrap() - 0.9).abs() < 0.01);
}
