//! CLI argument hardening: every malformed numeric flag must exit with a
//! usage error (status 1, message + usage on stderr), never a panic. PR 9
//! left `--shards` able to reach a `u32` conversion panic deep inside the
//! shard router on absurd values; this suite drives the real release
//! binary over the bad-flag matrix so a regression trips in CI, and
//! smoke-tests the `--metadata` discovery leg end to end.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// A scratch lake directory holding one tiny CSV (removed on drop), so
/// flag parsing that happens *after* the lake loads is reachable too.
struct ScratchLake(PathBuf);

impl ScratchLake {
    fn new(name: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("dialite_cli_{}_{name}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("scratch lake dir");
        std::fs::write(
            dir.join("cities.csv"),
            "city,population\noslo,700000\nbergen,280000\n",
        )
        .expect("scratch lake csv");
        ScratchLake(dir)
    }

    fn dir(&self) -> &str {
        self.0.to_str().expect("utf-8 temp path")
    }

    fn query(&self) -> String {
        self.0.join("cities.csv").to_string_lossy().into_owned()
    }
}

impl Drop for ScratchLake {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn dialite(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dialite"))
        .args(args)
        .output()
        .expect("spawn dialite binary")
}

/// The binary must refuse with a usage error: exit status 1, the message
/// and the usage block on stderr, and no panic anywhere.
fn assert_usage_error(args: &[&str], message: &str) {
    let out = dialite(args);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(1),
        "{args:?} should exit 1, got {:?}\n{stderr}",
        out.status
    );
    assert!(!stderr.contains("panicked"), "{args:?} panicked:\n{stderr}");
    assert!(
        stderr.contains(message),
        "{args:?} missing {message:?}:\n{stderr}"
    );
    assert!(
        stderr.contains("usage:"),
        "{args:?} missing usage block:\n{stderr}"
    );
}

#[test]
fn non_numeric_shards_is_a_usage_error() {
    let lake = ScratchLake::new("shards_nan");
    assert_usage_error(
        &[
            "discover",
            "--lake",
            lake.dir(),
            "--query",
            &lake.query(),
            "--shards",
            "abc",
        ],
        "--shards must be a number",
    );
}

#[test]
fn overflowing_shards_is_a_usage_error() {
    let lake = ScratchLake::new("shards_overflow");
    // Larger than u64: the usize parse itself fails.
    assert_usage_error(
        &[
            "discover",
            "--lake",
            lake.dir(),
            "--query",
            &lake.query(),
            "--shards",
            "99999999999999999999",
        ],
        "--shards must be a number",
    );
}

#[test]
fn shards_past_the_router_width_is_a_usage_error_not_a_panic() {
    // Fits in usize but not in the router's u32 shard ids — exactly the
    // value that used to panic inside `ShardRouter::new`.
    let lake = ScratchLake::new("shards_wide");
    assert_usage_error(
        &[
            "serve",
            "--lake",
            lake.dir(),
            "--query",
            &lake.query(),
            "--shards",
            "5000000000",
        ],
        "out of range",
    );
}

#[test]
fn non_numeric_k_is_a_usage_error() {
    let lake = ScratchLake::new("k");
    assert_usage_error(
        &[
            "discover",
            "--lake",
            lake.dir(),
            "--query",
            &lake.query(),
            "--k",
            "abc",
        ],
        "--k must be a number",
    );
}

#[test]
fn non_numeric_clients_and_requests_are_usage_errors() {
    let lake = ScratchLake::new("serve_flags");
    assert_usage_error(
        &[
            "serve",
            "--lake",
            lake.dir(),
            "--query",
            &lake.query(),
            "--clients",
            "abc",
        ],
        "--clients must be a number",
    );
    assert_usage_error(
        &[
            "serve",
            "--lake",
            lake.dir(),
            "--query",
            &lake.query(),
            "--requests",
            "-3",
        ],
        "--requests must be a number",
    );
}

#[test]
fn non_numeric_max_postings_is_a_usage_error() {
    let lake = ScratchLake::new("postings");
    assert_usage_error(
        &[
            "discover",
            "--lake",
            lake.dir(),
            "--query",
            &lake.query(),
            "--max-postings",
            "lots",
        ],
        "--max-postings must be a number or 'unlimited'",
    );
}

#[test]
fn non_numeric_generate_flags_are_usage_errors() {
    assert_usage_error(
        &["generate", "--prompt", "x", "--rows", "abc"],
        "--rows must be a number",
    );
    assert_usage_error(
        &["generate", "--prompt", "x", "--seed", "abc"],
        "--seed must be a number",
    );
}

#[test]
fn unknown_command_is_a_usage_error() {
    assert_usage_error(&["frobnicate"], "unknown command");
}

#[test]
fn missing_query_file_is_an_error_not_a_panic() {
    let lake = ScratchLake::new("missing_query");
    let missing = Path::new(lake.dir()).join("nope.csv");
    let out = dialite(&[
        "discover",
        "--lake",
        lake.dir(),
        "--query",
        missing.to_str().unwrap(),
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(1), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
}

/// End-to-end smoke of the new discovery leg. The scratch lake is the
/// metadata leg's home turf: a value-disjoint table sharing the query's
/// headers, which the value-based engines cannot surface at all — so the
/// default run ends with an empty integration set, and `--metadata`
/// turns the same invocation into a full pipeline run.
#[test]
fn metadata_flag_adds_the_header_matching_engine() {
    let lake = ScratchLake::new("metadata");
    std::fs::write(
        Path::new(lake.dir()).join("towns.csv"),
        "city,population\nkirkenes,3500\nalta,15000\n",
    )
    .expect("second lake csv");

    let without = dialite(&["discover", "--lake", lake.dir(), "--query", &lake.query()]);
    let stderr = String::from_utf8_lossy(&without.stderr);
    assert_eq!(without.status.code(), Some(1), "{stderr}");
    assert!(
        stderr.contains("empty integration set"),
        "value engines alone find nothing here:\n{stderr}"
    );

    let with = dialite(&[
        "discover",
        "--lake",
        lake.dir(),
        "--query",
        &lake.query(),
        "--metadata",
    ]);
    assert!(with.status.success(), "{:?}", with);
    let stdout = String::from_utf8_lossy(&with.stdout);
    assert!(
        stdout.contains("metadata:"),
        "metadata engine block:\n{stdout}"
    );
    assert!(
        stdout.contains("towns (1.000)"),
        "header-identical table surfaces via metadata at full score:\n{stdout}"
    );
    assert!(
        stdout.contains("== Integrate =="),
        "discovery feeds integration:\n{stdout}"
    );
}
