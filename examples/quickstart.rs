//! Quickstart: the full DIALITE pipeline on the bundled demo lake.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Uploads the paper's query table T1 (COVID vaccination rates), discovers
//! unionable/joinable tables (SANTOS-style + LSH Ensemble), aligns and
//! integrates them with ALITE's Full Disjunction, and runs a first analysis.

use dialite::analyze::{extremes, pearson_columns};
use dialite::discovery::TableQuery;
use dialite::pipeline::{demo, Pipeline};

fn main() {
    // The data lake of the demonstration (T2, T3, vaccine tables, noise).
    let lake = demo::covid_lake();
    println!(
        "Data lake: {} tables, {} rows total\n",
        lake.len(),
        lake.total_rows()
    );

    // The user uploads a query table and marks `City` as the intent column.
    let query = TableQuery::with_column(demo::fig2_query(), 1);
    println!("Query table:\n{}", query.table);

    // Discover → Align → Integrate with the demo configuration.
    let pipeline = Pipeline::demo_default(&lake);
    let run = pipeline.run(&lake, &query).expect("pipeline run");
    println!("{}", run.report());

    // Analyze (paper Example 3).
    let out = run.integrated.table();
    let col = |name: &str| out.column_index(name).expect("integration id");
    let rate = col("Vaccination Rate");
    let (lo, hi) = extremes(out, rate).expect("numeric column");
    println!(
        "\nLowest vaccination rate:  {}",
        out.row(lo).unwrap()[col("City")]
    );
    println!(
        "Highest vaccination rate: {}",
        out.row(hi).unwrap()[col("City")]
    );
    let r1 = pearson_columns(out, rate, col("Death Rate")).unwrap();
    let r2 = pearson_columns(out, col("Total Cases"), rate).unwrap();
    println!("corr(vaccination, death rate) = {r1:.2}   (paper: 0.16)");
    println!("corr(cases, vaccination)      = {r2:.2}   (paper: 0.9)");

    // What the budgeted discovery stage actually did (cache hit rate,
    // partitions pruned, SANTOS candidates scored, latency buckets).
    let telemetry = pipeline.telemetry().expect("indexed pipeline");
    println!("\nDiscovery telemetry:\n{}", telemetry.summary());
}
