//! DIALITE extensibility (paper §3.2, Figs. 4–6): plug user-defined
//! components into every stage of the pipeline.
//!
//! * Fig. 4 — a user-defined discovery algorithm (inner-join size);
//! * Fig. 5 — a generated query table ("GPT-3" → seeded synthesizer);
//! * Fig. 6 — a user-defined integration operator (outer join).
//!
//! ```text
//! cargo run --example custom_components
//! ```

use dialite::datagen::TableSynth;
use dialite::discovery::{SimilarityDiscovery, TableQuery};
use dialite::pipeline::{demo, Pipeline};
use dialite_integrate::OuterJoinIntegrator;

fn main() {
    let lake = demo::covid_lake();

    // Fig. 5: the user has no query table — generate one from a prompt.
    let mut synth = TableSynth::new(2023);
    let query_table = synth.generate(
        "generate a query table about COVID-19 cases with 5 columns and 5 rows",
        5,
        5,
    );
    println!("Generated query table:\n{query_table}");

    // Fig. 4: a user-defined discovery algorithm — similarity is the size
    // of the inner join between the two tables' best column pair.
    let inner_join_size = SimilarityDiscovery::new("inner-join-size", &lake, |q, t| {
        let mut best = 0usize;
        for qc in 0..q.column_count() {
            let qs = q.column_token_set(qc);
            for tc in 0..t.column_count() {
                let ts = t.column_token_set(tc);
                best = best.max(qs.intersection(&ts).count());
            }
        }
        best as f64
    });

    // Fig. 6: outer join as a user-chosen integration operator.
    let pipeline = Pipeline::builder()
        .discovery(Box::new(inner_join_size))
        .integrator(Box::new(OuterJoinIntegrator))
        .top_k(3)
        .build();

    let query = TableQuery::with_column(query_table, 1);
    match pipeline.run(&lake, &query) {
        Ok(run) => println!("{}", run.report()),
        Err(e) => println!("pipeline: {e}"),
    }
}
