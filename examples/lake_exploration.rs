//! Discovery and alignment quality on a synthetic benchmark lake with
//! ground truth — a miniature of experiments E7/E8.
//!
//! ```text
//! cargo run --release --example lake_exploration
//! ```

use std::collections::HashSet;
use std::sync::Arc;

use dialite::align::{Alignment, HolisticMatcher, KbAnnotator};
use dialite::datagen::{
    lake::{LakeSpec, SyntheticLake},
    metrics::{alignment_pair_f1, precision_recall_at_k},
};
use dialite::discovery::{
    Discovery, ExactOverlapDiscovery, LshEnsembleConfig, LshEnsembleDiscovery, SantosConfig,
    SantosDiscovery, TableQuery,
};
use dialite::table::Table;

fn main() {
    let spec = LakeSpec {
        universes: 5,
        fragments_per_universe: 5,
        rows_per_universe: 80,
        categorical_cols: 3,
        numeric_cols: 1,
        null_rate: 0.05,
        value_dirt_rate: 0.0,
        scramble_headers: true,
        seed: 42,
    };
    let synth = SyntheticLake::generate(&spec);
    println!(
        "Synthetic lake: {} fragments from {} universes (headers scrambled)\n",
        synth.lake.len(),
        spec.universes
    );

    // --- Discovery quality (E7 miniature) ---
    let kb = Arc::new(synth.truth.kb.clone());
    let santos = SantosDiscovery::build(&synth.lake, kb.clone(), SantosConfig::default());
    let lshe = LshEnsembleDiscovery::build(&synth.lake, LshEnsembleConfig::default());
    let overlap = ExactOverlapDiscovery::build(&synth.lake, true);

    let k = 6;
    let engines: Vec<(&str, &dyn Discovery)> = vec![
        ("santos", &santos),
        ("lsh-ensemble", &lshe),
        ("exact-overlap", &overlap),
    ];
    println!("{:<14} {:>10} {:>10}", "engine", "P@6", "R@6");
    for (name, engine) in engines {
        let (mut psum, mut rsum, mut n) = (0.0, 0.0, 0usize);
        for table in synth.lake.tables() {
            let truth: HashSet<String> = synth.truth.related(table.name());
            if truth.is_empty() {
                continue;
            }
            let query = TableQuery::new(table.as_ref().clone());
            let hits = engine.discover(&query, k);
            let ranked: Vec<String> = hits.into_iter().map(|d| d.table).collect();
            let (p, r) = precision_recall_at_k(&ranked, &truth, k);
            psum += p;
            rsum += r;
            n += 1;
        }
        println!(
            "{:<14} {:>10.3} {:>10.3}",
            name,
            psum / n as f64,
            rsum / n as f64
        );
    }

    // --- Alignment quality (E8 miniature) ---
    let tables_owned: Vec<Table> = synth.lake.tables().map(|t| t.as_ref().clone()).collect();
    // Align per universe (an integration set, as the pipeline would form).
    println!("\n{:<22} {:>8} {:>8} {:>8}", "matcher", "P", "R", "F1");
    for (name, matcher) in [
        ("header-equality", None),
        ("holistic", Some(HolisticMatcher::default())),
        (
            "holistic+kb",
            Some(HolisticMatcher::default().with_annotator(Arc::new(KbAnnotator::new(kb)))),
        ),
    ] {
        let (mut p, mut r, mut f, mut n) = (0.0, 0.0, 0.0, 0usize);
        for u in 0..spec.universes {
            let set: Vec<&Table> = tables_owned
                .iter()
                .filter(|t| synth.truth.universe_of[t.name()] == u)
                .collect();
            let alignment = match &matcher {
                None => Alignment::by_headers(&set),
                Some(m) => m.align(&set),
            };
            let (pp, rr, ff) = alignment_pair_f1(&set, &alignment, &synth.truth);
            p += pp;
            r += rr;
            f += ff;
            n += 1;
        }
        let n = n as f64;
        println!("{:<22} {:>8.3} {:>8.3} {:>8.3}", name, p / n, r / n, f / n);
    }
}
