//! The paper's §3.2 scenario (Figs. 7–8): integrate the vaccine tables with
//! outer join and with Full Disjunction, then run entity resolution over
//! both results — showing why FD's maximal tuples make the downstream task
//! work.
//!
//! ```text
//! cargo run --example vaccine_er
//! ```

use dialite::align::Alignment;
use dialite::analyze::EntityResolver;
use dialite::pipeline::demo;
use dialite::table::Table;
use dialite_integrate::{AliteFd, Integrator, OuterJoinIntegrator};

fn main() {
    let (t4, t5, t6) = demo::fig7_tables();
    println!("Integration set:\n{t4}\n{t5}\n{t6}");
    let tables: Vec<&Table> = vec![&t4, &t5, &t6];
    let alignment = Alignment::by_headers(&tables);

    // Fig. 8(a): the user-defined outer-join operator.
    let oj = OuterJoinIntegrator
        .integrate(&tables, &alignment)
        .expect("outer join");
    println!(
        "(a) outer join:\n{}",
        oj.display_with_provenance(Some(&["T4", "T5", "T6"]))
    );

    // Fig. 8(b): ALITE's FD.
    let fd = AliteFd::default()
        .integrate(&tables, &alignment)
        .expect("full disjunction");
    println!(
        "(b) full disjunction:\n{}",
        fd.display_with_provenance(Some(&["T4", "T5", "T6"]))
    );

    // Figs. 8(c)/(d): entity resolution over both results.
    let er = EntityResolver::demo_default();
    let over_oj = er.resolve(oj.table());
    let over_fd = er.resolve(fd.table());
    println!(
        "(c) ER over outer join ({} entities):\n{}",
        over_oj.entity_count(),
        over_oj.table
    );
    println!(
        "(d) ER over FD ({} entities):\n{}",
        over_fd.entity_count(),
        over_fd.table
    );

    println!(
        "FD derived J&J's approver; outer join did not. \
         FD+ER yields {} complete entities vs {} fragmented outer-join rows.",
        over_fd.entity_count(),
        over_oj.table.row_count()
    );
}
