//! A file-based workflow: build a CSV data lake on disk, point DIALITE at
//! it, and write the integrated result back out as CSV — the way a
//! command-line user (or the bundled `dialite` binary) drives the system.
//!
//! ```text
//! cargo run --example csv_lake
//! ```

use std::path::PathBuf;

use dialite::analyze::describe;
use dialite::discovery::TableQuery;
use dialite::pipeline::{demo, Pipeline};
use dialite::table::{table_to_csv, write_csv_path, DataLake};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Stage a lake directory with the demo tables as CSV files.
    let dir: PathBuf =
        std::env::temp_dir().join(format!("dialite_csv_lake_{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    for table in demo::covid_lake().tables() {
        write_csv_path(table, &dir.join(format!("{}.csv", table.name())))?;
    }
    println!("lake directory: {}", dir.display());

    // Load it back the way the CLI does.
    let mut lake = DataLake::new();
    let loaded = lake.load_dir(&dir)?;
    println!("loaded {loaded} CSV tables");

    // Run the pipeline with the uploaded query table.
    let pipeline = Pipeline::demo_default(&lake);
    let query = TableQuery::with_column(demo::fig2_query(), 1);
    let run = pipeline.run(&lake, &query)?;
    println!("\nintegrated table:\n{}", run.integrated.table());

    // Profile and persist the result.
    println!("{}", describe(run.integrated.table()));
    let out_path = dir.join("integrated.csv");
    write_csv_path(run.integrated.table(), &out_path)?;
    println!("wrote {}", out_path.display());
    println!("\nfirst lines:\n{}", {
        let csv = table_to_csv(run.integrated.table());
        csv.lines().take(3).collect::<Vec<_>>().join("\n")
    });

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
